//! Versioned mid-run snapshots: crash-safe checkpointing with
//! byte-identical resume.
//!
//! A [`SimSnapshot`] captures the *complete* live state of a run at an
//! event boundary — the canonical event queue, the node table, every
//! stateful RNG stream position, loss/propagation model state, metric
//! accumulators, fault-plan progress, and the trace cursor — such that
//! [`run_scenario_resumed`](crate::run_scenario_resumed) continues it
//! to a [`RunResult`](crate::RunResult) whose JSON (and JSONL trace)
//! is **byte-identical** to an uninterrupted run of the same
//! `(config, seed)`.
//!
//! # What is *not* captured
//!
//! Derived state is rebuilt, not stored:
//!
//! * **Mobility** — `position_at(t)` is a pure function of
//!   `(params, seed, t)`; resume rebuilds the models from the config
//!   and lazily re-extends trajectories to identical values.
//! * **Spatial index / shard maps / scratch buffers** — recomputed
//!   from the snapshotted positions.
//! * **Setup-only RNG streams** (placement, hello offsets, group
//!   assignment) — consumed only before the first event; a resumed run
//!   skips the setup draws entirely.
//!
//! # Canonical queue order
//!
//! The event queue is serialized as `(time, seq, event)` triples in
//! ascending `(time, seq)` order — the total order every scheduler
//! implementation observes. Restore re-inserts entries through the
//! [`SnapshotQueue`](mobic_sim::SnapshotQueue) trait, so a snapshot
//! taken under the binary-heap scheduler restores into the calendar
//! queue (or the sharded engine) and vice versa: the snapshot is
//! queue-implementation-agnostic.
//!
//! # On-disk format
//!
//! One header line of JSON — `{"schema":1,"hash":"fnv1a64:…","len":N}`
//! — then `\n`, then the JSON payload. The FNV-1a hash covers the
//! payload bytes; [`load_snapshot`] verifies schema, length, and hash
//! before deserializing, so a torn or bit-rotten file yields a typed
//! [`SnapshotError`] instead of silently corrupt state. Files are
//! published with [`write_atomic`], so a crash mid-write never leaves
//! a half-snapshot under the final name.

use std::path::{Path, PathBuf};
use std::{fmt, fs, io};

use mobic_core::NodeTable;
use mobic_geom::Vec2;
use mobic_metrics::{TimeSeries, TransitionLog};
use mobic_net::loss::LossState;
use mobic_radio::PropagationState;
use mobic_sim::SimTime;
use mobic_trace::{fnv1a64, write_atomic, TraceCursor};
use serde::{Deserialize, Serialize};

use crate::config::CheckpointPolicy;
use crate::runner::{config_hash_for, Ev, FaultCounters, HealingProbe, PendingRx};
use crate::{DeliveryPath, Engine, Recluster, ScenarioConfig, Scheduler};

/// On-disk snapshot schema version. Bumped on any incompatible change
/// to [`SimSnapshot`]'s serialized shape; [`load_snapshot`] refuses
/// other versions with [`SnapshotError::Schema`].
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// Complete mid-run state of a scenario at an event boundary.
///
/// Produced by [`run_scenario_until`](crate::run_scenario_until) (and
/// periodically by [`run_scenario_checkpointed`](crate::run_scenario_checkpointed));
/// consumed by [`run_scenario_resumed`](crate::run_scenario_resumed).
/// Fields are crate-private — the runner is the only writer/reader of
/// the live state; external callers interact through the accessors and
/// the save/load functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// Semantic config hash gating restore (see
    /// [`semantic_config_hash`]).
    pub(crate) config_hash: String,
    pub(crate) seed: u64,
    pub(crate) now: SimTime,
    pub(crate) events_processed: u64,
    pub(crate) next_seq: u64,
    /// Pending events in canonical `(time, seq)` ascending order.
    pub(crate) queue: Vec<(SimTime, u64, Ev)>,
    pub(crate) window_start: SimTime,
    pub(crate) node_table: NodeTable,
    pub(crate) positions: Vec<Vec2>,
    pub(crate) last_refresh: SimTime,
    /// ChaCha word position of the live fault stream, split
    /// `(hi, lo)` so the serialized form stays within u64.
    pub(crate) fault_rng_word_pos: Option<(u64, u64)>,
    pub(crate) loss: LossState,
    pub(crate) propagation: PropagationState,
    pub(crate) last_arrival: Vec<Option<SimTime>>,
    pub(crate) pending: Vec<Option<PendingRx>>,
    pub(crate) hello_broadcasts: u64,
    pub(crate) deliveries: u64,
    pub(crate) mac_collisions: u64,
    pub(crate) candidate_total: u64,
    pub(crate) index_refreshes: u64,
    pub(crate) elections_skipped: u64,
    pub(crate) log: TransitionLog,
    pub(crate) cluster_series: TimeSeries,
    pub(crate) gateway_series: TimeSeries,
    pub(crate) metric_series: TimeSeries,
    pub(crate) faults: FaultCounters,
    pub(crate) probes: Vec<HealingProbe>,
    pub(crate) probes_created: u32,
    pub(crate) probes_healed: u32,
    pub(crate) healing_latency_sum: f64,
    pub(crate) healing_latency_max: f64,
    pub(crate) audit_checks: u64,
    pub(crate) audit_violations: u64,
    pub(crate) abort: Option<(SimTime, usize)>,
    /// Durable trace position at capture time; `None` for untraced
    /// runs.
    pub(crate) trace: Option<TraceCursor>,
}

impl SimSnapshot {
    /// Events processed when the snapshot was taken (also its rotation
    /// key: newer snapshots have strictly larger counts).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Simulated time of the last processed event.
    #[must_use]
    pub fn sim_now(&self) -> SimTime {
        self.now
    }

    /// The seed of the run this snapshot belongs to.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Durable trace position at capture time; `None` for untraced
    /// runs. A traced resume truncates its file to this cursor via
    /// [`JsonlSink::resume`](mobic_trace::JsonlSink::resume).
    #[must_use]
    pub fn trace_cursor(&self) -> Option<TraceCursor> {
        self.trace
    }

    /// Checks that this snapshot belongs to the run `(cfg, seed)`
    /// describes: same seed, same [`semantic_config_hash`]. Execution
    /// knobs (engine, shards, scheduler, delivery path, recluster
    /// strategy, checkpoint cadence) may differ — they never change
    /// results, so a snapshot taken under one may resume under
    /// another.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on mismatch.
    pub fn compatible_with(&self, cfg: &ScenarioConfig, seed: u64) -> Result<(), String> {
        if self.seed != seed {
            return Err(format!(
                "snapshot was taken with seed {}, resume requested seed {seed}",
                self.seed
            ));
        }
        let expected = semantic_config_hash(cfg);
        if self.config_hash != expected {
            return Err(format!(
                "snapshot config hash {} != semantic hash {expected} of the resume config",
                self.config_hash
            ));
        }
        Ok(())
    }
}

/// Config hash over the *semantic* knobs only: execution knobs that
/// provably never change results — `engine`/`shards`, `scheduler`,
/// `delivery`, `recluster`, and the checkpoint cadence itself — are
/// canonicalized to their defaults before hashing. `fast_path` stays
/// in the hash: it changes serialized perf fields (`indexed`,
/// `mean_candidates`, `index_refreshes`), so switching it across a
/// resume would break byte-identity.
#[must_use]
pub fn semantic_config_hash(cfg: &ScenarioConfig) -> String {
    let mut canon = *cfg;
    canon.engine = Engine::Sequential;
    canon.shards = 0;
    canon.scheduler = Scheduler::Heap;
    canon.delivery = DeliveryPath::Auto;
    canon.recluster = Recluster::Incremental;
    canon.checkpoint = CheckpointPolicy::default();
    config_hash_for(&canon)
}

/// Why a snapshot file could not be loaded.
///
/// Every variant except [`Io`](Self::Io) means the *file content* is
/// unusable — recovery code treats those as "this snapshot is corrupt,
/// fall back to an older one (or a cold start)", never as fatal.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read at all.
    Io(io::Error),
    /// No header line (missing newline, or the first line is not
    /// header JSON) — not a snapshot file.
    MissingHeader,
    /// The header declares an unsupported schema version.
    Schema {
        /// Version found in the header.
        found: u32,
    },
    /// The payload is shorter or longer than the header declares —
    /// a torn write.
    Truncated {
        /// Payload length the header promised.
        expected: u64,
        /// Payload length actually present.
        found: u64,
    },
    /// The payload hash does not match the header — bit rot or
    /// tampering.
    HashMismatch {
        /// Hash recorded in the header.
        expected: String,
        /// Hash of the payload as read.
        found: String,
    },
    /// The payload passed the hash gate but failed to deserialize
    /// (snapshot written by an incompatible build).
    Payload(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::MissingHeader => write!(f, "not a snapshot file (no header line)"),
            SnapshotError::Schema { found } => write!(
                f,
                "unsupported snapshot schema {found} (this build reads {SNAPSHOT_SCHEMA})"
            ),
            SnapshotError::Truncated { expected, found } => write!(
                f,
                "snapshot payload is {found} B but the header declares {expected} B (torn write)"
            ),
            SnapshotError::HashMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot hash mismatch: header {expected}, payload {found}"
                )
            }
            SnapshotError::Payload(e) => write!(f, "snapshot payload does not parse: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The one-line JSON header preceding the payload.
#[derive(Serialize, Deserialize)]
struct Header {
    schema: u32,
    hash: String,
    len: u64,
}

fn payload_hash(payload: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(payload))
}

/// Serializes and atomically publishes a snapshot at `path` (header
/// line + hashed payload; see the module docs for the format).
///
/// # Errors
///
/// Returns serialization and write errors. A failed write never leaves
/// a partial file under `path` — [`write_atomic`] publishes via
/// temp-file + rename.
pub fn save_snapshot(snap: &SimSnapshot, path: impl AsRef<Path>) -> io::Result<()> {
    let payload = serde_json::to_vec(snap)?;
    let header = Header {
        schema: SNAPSHOT_SCHEMA,
        hash: payload_hash(&payload),
        len: payload.len() as u64,
    };
    let mut bytes = serde_json::to_vec(&header)?;
    bytes.push(b'\n');
    bytes.extend_from_slice(&payload);
    write_atomic(path, &bytes)
}

/// Reads and verifies a snapshot: header parse, schema check, length
/// check, hash check, then payload deserialization — in that order, so
/// the error names the first gate the file failed.
///
/// # Errors
///
/// See [`SnapshotError`]; anything but [`SnapshotError::Io`] means the
/// file content is unusable and an older snapshot (or a cold start)
/// should be used instead.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<SimSnapshot, SnapshotError> {
    let bytes = fs::read(path)?;
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(SnapshotError::MissingHeader)?;
    let header: Header =
        serde_json::from_slice(&bytes[..nl]).map_err(|_| SnapshotError::MissingHeader)?;
    if header.schema != SNAPSHOT_SCHEMA {
        return Err(SnapshotError::Schema {
            found: header.schema,
        });
    }
    let payload = &bytes[nl + 1..];
    if payload.len() as u64 != header.len {
        return Err(SnapshotError::Truncated {
            expected: header.len,
            found: payload.len() as u64,
        });
    }
    let found = payload_hash(payload);
    if found != header.hash {
        return Err(SnapshotError::HashMismatch {
            expected: header.hash,
            found,
        });
    }
    serde_json::from_slice(payload).map_err(|e| SnapshotError::Payload(e.to_string()))
}

/// Snapshot files in `dir`, sorted ascending by name — and therefore
/// by event count, because names zero-pad the count
/// (`ckpt-00000000000000001024.ckpt`).
fn list_snapshots(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "ckpt"))
        .collect();
    found.sort();
    Ok(found)
}

/// Writes a rotated snapshot into `dir` (created if absent) named by
/// its event count, then prunes the oldest files beyond `keep`
/// (clamped to at least 1). Returns the path written.
///
/// # Errors
///
/// Returns directory-creation and write errors; pruning errors are
/// ignored (stale snapshots are harmless).
pub fn write_rotated(snap: &SimSnapshot, dir: &Path, keep: u32) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("ckpt-{:020}.ckpt", snap.events_processed));
    save_snapshot(snap, &path)?;
    if let Ok(mut all) = list_snapshots(dir) {
        let keep = keep.max(1) as usize;
        while all.len() > keep {
            let oldest = all.remove(0);
            let _ = fs::remove_file(oldest);
        }
    }
    Ok(path)
}

/// Loads the newest snapshot in `dir` that passes every integrity
/// gate, degrading to older ones on corruption. Returns the snapshot
/// (or `None` when the directory is missing, empty, or holds only
/// corrupt files) and the number of snapshot files *rejected* along
/// the way — surfaced by `mobic-sweepd` as its corruption-fallback
/// counter.
#[must_use]
pub fn latest_snapshot(dir: &Path) -> (Option<SimSnapshot>, u32) {
    let Ok(mut all) = list_snapshots(dir) else {
        return (None, 0);
    };
    all.reverse(); // newest first
    let mut rejected = 0;
    for path in all {
        match load_snapshot(&path) {
            Ok(snap) => return (Some(snap), rejected),
            Err(_) => rejected += 1,
        }
    }
    (None, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_scenario, run_scenario_until, RunOutcome};
    use mobic_trace::NullSink;

    fn small_cfg() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.n_nodes = 12;
        cfg.sim_time_s = 20.0;
        cfg.tx_range_m = 200.0;
        cfg
    }

    fn suspend(cfg: &ScenarioConfig, seed: u64, after: u64) -> SimSnapshot {
        match run_scenario_until(cfg, seed, after, &mut NullSink).unwrap() {
            RunOutcome::Suspended(snap) => *snap,
            RunOutcome::Done(_) => panic!("run finished before event {after}"),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mobic-snapshot-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_resume_equivalence() {
        let cfg = small_cfg();
        let reference = serde_json::to_string(&run_scenario(&cfg, 7).unwrap()).unwrap();
        let snap = suspend(&cfg, 7, 60);
        let dir = tmp_dir("roundtrip");
        let path = dir.join("s.ckpt");
        save_snapshot(&snap, &path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.events_processed(), snap.events_processed());
        assert_eq!(loaded.seed(), 7);
        let resumed = crate::run_scenario_resumed(&cfg, 7, loaded, &mut NullSink).unwrap();
        assert_eq!(serde_json::to_string(&resumed).unwrap(), reference);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_not_restored() {
        let cfg = small_cfg();
        let snap = suspend(&cfg, 3, 50);
        let dir = tmp_dir("corruption");
        let path = dir.join("s.ckpt");
        save_snapshot(&snap, &path).unwrap();
        let good = fs::read(&path).unwrap();
        let nl = good.iter().position(|&b| b == b'\n').unwrap();

        // Flip one payload byte: hash gate.
        let mut bad = good.clone();
        let i = nl + 1 + (bad.len() - nl) / 2;
        bad[i] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::HashMismatch { .. })
        ));

        // Drop trailing payload bytes: length gate.
        fs::write(&path, &good[..good.len() - 10]).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::Truncated { .. })
        ));

        // Wrong schema version in an otherwise valid file.
        let header: Header = serde_json::from_slice(&good[..nl]).unwrap();
        let mut rewritten = serde_json::to_vec(&Header {
            schema: SNAPSHOT_SCHEMA + 1,
            ..header
        })
        .unwrap();
        rewritten.push(b'\n');
        rewritten.extend_from_slice(&good[nl + 1..]);
        fs::write(&path, &rewritten).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::Schema { found }) if found == SNAPSHOT_SCHEMA + 1
        ));

        // Garbage: header gate.
        fs::write(&path, b"not a snapshot").unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::MissingHeader)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_newest_and_latest_skips_corrupt() {
        let cfg = small_cfg();
        let dir = tmp_dir("rotation");
        for after in [20u64, 40, 60, 80] {
            let snap = suspend(&cfg, 5, after);
            write_rotated(&snap, &dir, 2).unwrap();
        }
        let kept = list_snapshots(&dir).unwrap();
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(
            kept[1].ends_with("ckpt-00000000000000000080.ckpt"),
            "{kept:?}"
        );

        let (best, rejected) = latest_snapshot(&dir);
        assert_eq!(best.unwrap().events_processed(), 80);
        assert_eq!(rejected, 0);

        // Corrupt the newest: recovery degrades to the older one and
        // counts the rejection.
        let newest = kept[1].clone();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (best, rejected) = latest_snapshot(&dir);
        assert_eq!(best.unwrap().events_processed(), 60);
        assert_eq!(rejected, 1);

        // Both corrupt: cold start, both rejections counted.
        fs::write(&kept[0], b"junk").unwrap();
        let (best, rejected) = latest_snapshot(&dir);
        assert!(best.is_none());
        assert_eq!(rejected, 2);

        // Missing directory is a quiet cold start.
        fs::remove_dir_all(&dir).unwrap();
        let (best, rejected) = latest_snapshot(&dir);
        assert!(best.is_none());
        assert_eq!(rejected, 0);
    }

    #[test]
    fn semantic_hash_ignores_execution_knobs_only() {
        let base = small_cfg();
        let h = semantic_config_hash(&base);

        // Execution knobs: hash-invariant.
        let mut c = base;
        c.engine = Engine::Sharded;
        c.shards = 4;
        assert_eq!(semantic_config_hash(&c), h);
        let mut c = base;
        c.scheduler = Scheduler::Calendar;
        assert_eq!(semantic_config_hash(&c), h);
        let mut c = base;
        c.delivery = DeliveryPath::Scalar;
        assert_eq!(semantic_config_hash(&c), h);
        let mut c = base;
        c.recluster = Recluster::Full;
        assert_eq!(semantic_config_hash(&c), h);
        let mut c = base;
        c.checkpoint = CheckpointPolicy {
            every_s: 5.0,
            keep: 4,
        };
        assert_eq!(semantic_config_hash(&c), h);

        // Semantic knobs: hash-sensitive.
        let mut c = base;
        c.n_nodes += 1;
        assert_ne!(semantic_config_hash(&c), h);
        let mut c = base;
        c.fast_path = crate::FastPath::Off;
        assert_ne!(semantic_config_hash(&c), h);
    }

    #[test]
    fn compatibility_gate_names_the_mismatch() {
        let cfg = small_cfg();
        let snap = suspend(&cfg, 9, 40);
        snap.compatible_with(&cfg, 9).unwrap();
        assert!(snap.compatible_with(&cfg, 10).unwrap_err().contains("seed"));
        let mut other = cfg;
        other.sim_time_s += 1.0;
        assert!(snap
            .compatible_with(&other, 9)
            .unwrap_err()
            .contains("hash"));
        // Execution knobs pass the gate.
        let mut exec = cfg;
        exec.scheduler = Scheduler::Calendar;
        exec.engine = Engine::Sharded;
        exec.shards = 2;
        snap.compatible_with(&exec, 9).unwrap();
    }
}
