//! Route-discovery disciplines and route validity.

use serde::{Deserialize, Serialize};

use crate::ClusterTopology;

/// An established source route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The node sequence, endpoints inclusive.
    pub hops: Vec<usize>,
    /// Which intermediate hops were clusterheads at discovery time
    /// (parallel to `hops`); used by cluster-route validity.
    pub relay_was_clusterhead: Vec<bool>,
    /// How many nodes forwarded the discovery request.
    pub discovery_cost: usize,
}

impl Route {
    /// Number of links.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// A route-discovery discipline.
pub trait Discovery {
    /// Human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Attempts to discover a route `src → dst` on the snapshot.
    fn discover(&self, topo: &ClusterTopology, src: usize, dst: usize) -> Option<Route>;

    /// `true` if an existing route is still usable on the (newer)
    /// snapshot. The base criterion is physical: every consecutive
    /// pair still within range. Disciplines may add structural
    /// requirements.
    fn still_valid(&self, topo: &ClusterTopology, route: &Route) -> bool {
        route
            .hops
            .windows(2)
            .all(|w| topo.are_neighbors(w[0], w[1]))
    }
}

/// Classic reactive flooding (DSR/AODV-style discovery): every node
/// rebroadcasts the request once; the route is the shortest path.
///
/// # Examples
///
/// ```
/// use mobic_core::Role;
/// use mobic_geom::Vec2;
/// use mobic_net::NodeId;
/// use mobic_routing::{ClusterTopology, Discovery, Flooding};
///
/// let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(50.0, 0.0)];
/// let roles = vec![Role::Clusterhead, Role::Member { ch: NodeId::new(0) }];
/// let topo = ClusterTopology::new(&positions, &roles, 60.0);
/// let route = Flooding.discover(&topo, 0, 1).unwrap();
/// assert_eq!(route.hop_count(), 1);
/// assert_eq!(route.discovery_cost, 2); // both nodes forwarded
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flooding;

impl Discovery for Flooding {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn discover(&self, topo: &ClusterTopology, src: usize, dst: usize) -> Option<Route> {
        let hops = topo.shortest_path(src, dst)?;
        let relay_was_clusterhead = hops
            .iter()
            .map(|&h| topo.role(h).is_clusterhead())
            .collect();
        Some(Route {
            relay_was_clusterhead,
            discovery_cost: topo.flood_cost(src),
            hops,
        })
    }
}

/// CBRP-flavored cluster routing: only clusterheads and gateways
/// forward discovery requests, and a route is additionally invalidated
/// when an intermediate relay that was a clusterhead at discovery time
/// loses the role (the cluster structure the route was built on has
/// churned, forcing a repair). This coupling is exactly how cluster
/// stability translates into routing performance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterRouting;

impl Discovery for ClusterRouting {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn discover(&self, topo: &ClusterTopology, src: usize, dst: usize) -> Option<Route> {
        let hops = topo.backbone_path(src, dst)?;
        let relay_was_clusterhead = hops
            .iter()
            .map(|&h| topo.role(h).is_clusterhead())
            .collect();
        Some(Route {
            relay_was_clusterhead,
            discovery_cost: topo.backbone_cost(src),
            hops,
        })
    }

    fn still_valid(&self, topo: &ClusterTopology, route: &Route) -> bool {
        if !route
            .hops
            .windows(2)
            .all(|w| topo.are_neighbors(w[0], w[1]))
        {
            return false;
        }
        // Interior relays that headed clusters must still head them.
        route.hops[1..route.hops.len().saturating_sub(1)]
            .iter()
            .zip(&route.relay_was_clusterhead[1..])
            .all(|(&h, &was_ch)| !was_ch || topo.role(h).is_clusterhead())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::Role;
    use mobic_geom::Vec2;
    use mobic_net::NodeId;

    fn chain(roles: Vec<Role>, range: f64) -> ClusterTopology {
        let positions: Vec<Vec2> = (0..roles.len())
            .map(|i| Vec2::new(i as f64 * 50.0, 0.0))
            .collect();
        ClusterTopology::new(&positions, &roles, range)
    }

    fn ch() -> Role {
        Role::Clusterhead
    }

    fn member(c: u32) -> Role {
        Role::Member { ch: NodeId::new(c) }
    }

    #[test]
    fn flooding_discovers_shortest() {
        let t = chain(vec![ch(), member(0), ch(), member(2), ch()], 60.0);
        let r = Flooding.discover(&t, 0, 4).unwrap();
        assert_eq!(r.hop_count(), 4);
        assert_eq!(r.discovery_cost, 5);
        assert_eq!(Flooding.name(), "flooding");
    }

    #[test]
    fn cluster_routing_uses_backbone() {
        let t = chain(vec![ch(), member(0), ch(), member(2), ch()], 60.0);
        let r = ClusterRouting.discover(&t, 0, 4).unwrap();
        assert_eq!(r.hops, vec![0, 1, 2, 3, 4]);
        assert!(r.relay_was_clusterhead[2]);
        assert!(!r.relay_was_clusterhead[1]);
    }

    #[test]
    fn physical_break_invalidates_both() {
        let t = chain(vec![ch(), member(0), ch()], 60.0);
        let route = Flooding.discover(&t, 0, 2).unwrap();
        assert!(Flooding.still_valid(&t, &route));
        assert!(ClusterRouting.still_valid(&t, &route));
        // Move node 1 away: rebuild topology with a gap.
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(500.0, 0.0),
            Vec2::new(100.0, 0.0),
        ];
        let t2 = ClusterTopology::new(&positions, &[ch(), member(0), ch()], 60.0);
        assert!(!Flooding.still_valid(&t2, &route));
        assert!(!ClusterRouting.still_valid(&t2, &route));
    }

    #[test]
    fn clusterhead_churn_invalidates_cluster_route_only() {
        let t = chain(vec![ch(), member(0), ch(), member(2), ch()], 60.0);
        let route = ClusterRouting.discover(&t, 0, 4).unwrap();
        // Same geometry, but relay 2 lost its clusterhead role.
        let positions: Vec<Vec2> = (0..5).map(|i| Vec2::new(i as f64 * 50.0, 0.0)).collect();
        let t2 = ClusterTopology::new(
            &positions,
            &[ch(), member(0), member(4), member(4), ch()],
            60.0,
        );
        assert!(Flooding.still_valid(&t2, &route), "physical path is intact");
        assert!(
            !ClusterRouting.still_valid(&t2, &route),
            "relay 2 resigned → cluster route must repair"
        );
    }

    #[test]
    fn endpoint_roles_do_not_matter_for_validity() {
        let t = chain(vec![ch(), member(0), ch()], 60.0);
        let route = ClusterRouting.discover(&t, 0, 2).unwrap();
        // Endpoint 0 resigns; interior (node 1, a gateway) unchanged.
        let positions: Vec<Vec2> = (0..3).map(|i| Vec2::new(i as f64 * 50.0, 0.0)).collect();
        let t2 = ClusterTopology::new(&positions, &[member(2), member(2), ch()], 60.0);
        assert!(ClusterRouting.still_valid(&t2, &route));
    }

    #[test]
    fn no_route_when_backbone_broken() {
        // 0 CH, 1 ordinary (only hears 0), 2 ordinary (only hears 3), 3 CH.
        let t = chain(vec![ch(), member(0), member(3), ch()], 60.0);
        assert!(ClusterRouting.discover(&t, 0, 3).is_none());
        assert!(Flooding.discover(&t, 0, 3).is_some());
    }

    #[test]
    fn route_hop_count_of_trivial_route() {
        let t = chain(vec![ch()], 60.0);
        let r = Flooding.discover(&t, 0, 0).unwrap();
        assert_eq!(r.hop_count(), 0);
    }
}
