//! Live routing experiments over evolving cluster structures.
//!
//! The experiment attaches to a full cluster simulation via the
//! scenario observer hook, maintains a set of randomly chosen traffic
//! flows, and at every sampling instant (one broadcast interval)
//! checks each flow's route against the fresh topology snapshot:
//! broken routes are re-discovered (counting discovery cost), and the
//! lifetime of the expired route is recorded.
//!
//! Comparing [`RoutingStats`] across clustering algorithms quantifies
//! the paper's §5 conjecture: stabler clusters → longer-lived cluster
//! routes and less rediscovery overhead.

use mobic_scenario::{run_scenario_observed, RunError, ScenarioConfig};
use mobic_sim::{rng::SeedSplitter, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::topology_from_view;
use crate::{Discovery, Route};

/// Configuration of a routing experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingExperiment {
    /// The underlying clustering scenario.
    pub scenario: ScenarioConfig,
    /// Number of concurrent traffic flows (random src → dst pairs).
    pub flows: u32,
}

/// Aggregate routing metrics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Protocol name.
    pub protocol: String,
    /// Clustering algorithm that ran underneath.
    pub algorithm: String,
    /// Completed route lifetimes in seconds (a route "completes" when
    /// it breaks; routes alive at the end are excluded, making the
    /// estimate conservative but unbiased across protocols).
    pub route_lifetimes_s: Vec<f64>,
    /// Mean completed route lifetime (0 if none completed).
    pub mean_route_lifetime_s: f64,
    /// Number of discovery attempts (initial + repairs).
    pub discoveries: u64,
    /// Number of discovery attempts that found no route.
    pub failed_discoveries: u64,
    /// Total nodes that forwarded discovery packets (the overhead
    /// currency of reactive routing).
    pub total_discovery_cost: u64,
    /// Mean hop count over all established routes.
    pub mean_hops: f64,
    /// Fraction of probe instants at which the flow had a live route.
    pub availability: f64,
}

/// One flow's bookkeeping.
struct Flow {
    src: usize,
    dst: usize,
    route: Option<(Route, SimTime)>,
}

impl RoutingExperiment {
    /// Runs the experiment with the given discovery discipline.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the underlying scenario is invalid
    /// or fails (e.g. a strict invariant audit trips).
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero or the scenario has fewer than two
    /// nodes.
    pub fn run<D: Discovery>(&self, protocol: &D, seed: u64) -> Result<RoutingStats, RunError> {
        assert!(self.flows > 0, "need at least one flow");
        assert!(self.scenario.n_nodes >= 2, "need at least two nodes");
        let n = self.scenario.n_nodes as usize;
        let mut rng = SeedSplitter::new(seed).stream("routing-flows", 0);
        let mut flows: Vec<Flow> = (0..self.flows)
            .map(|_| {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n - 1);
                if dst >= src {
                    dst += 1;
                }
                Flow {
                    src,
                    dst,
                    route: None,
                }
            })
            .collect();

        let warmup = SimTime::from_secs_f64(self.scenario.warmup_s);
        let range = self.scenario.tx_range_m;
        let mut lifetimes: Vec<f64> = Vec::new();
        let mut discoveries: u64 = 0;
        let mut failed: u64 = 0;
        let mut total_cost: u64 = 0;
        let mut hop_sum: u64 = 0;
        let mut routes_established: u64 = 0;
        let mut probes: u64 = 0;
        let mut live: u64 = 0;

        run_scenario_observed(&self.scenario, seed, |view| {
            if view.now < warmup {
                return;
            }
            let topo = topology_from_view(&view, range);
            for flow in &mut flows {
                probes += 1;
                // Check the current route.
                if let Some((route, since)) = &flow.route {
                    if protocol.still_valid(&topo, route) {
                        live += 1;
                        continue;
                    }
                    lifetimes.push((view.now - *since).as_secs_f64());
                    flow.route = None;
                }
                // (Re-)discover.
                discoveries += 1;
                match protocol.discover(&topo, flow.src, flow.dst) {
                    Some(route) => {
                        total_cost += route.discovery_cost as u64;
                        hop_sum += route.hop_count() as u64;
                        routes_established += 1;
                        live += 1;
                        flow.route = Some((route, view.now));
                    }
                    None => failed += 1,
                }
            }
        })?;

        let mean_route_lifetime_s = if lifetimes.is_empty() {
            0.0
        } else {
            lifetimes.iter().sum::<f64>() / lifetimes.len() as f64
        };
        Ok(RoutingStats {
            protocol: protocol.name().to_string(),
            algorithm: self.scenario.algorithm.name().to_string(),
            mean_route_lifetime_s,
            route_lifetimes_s: lifetimes,
            discoveries,
            failed_discoveries: failed,
            total_discovery_cost: total_cost,
            mean_hops: if routes_established == 0 {
                0.0
            } else {
                hop_sum as f64 / routes_established as f64
            },
            availability: if probes == 0 {
                0.0
            } else {
                live as f64 / probes as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterRouting, Flooding};
    use mobic_core::AlgorithmKind;
    use mobic_scenario::MobilityKind;

    fn experiment(alg: AlgorithmKind) -> RoutingExperiment {
        let mut scenario = ScenarioConfig::paper_table1();
        scenario.n_nodes = 15;
        scenario.sim_time_s = 80.0;
        scenario.tx_range_m = 250.0;
        scenario.algorithm = alg;
        RoutingExperiment { scenario, flows: 4 }
    }

    #[test]
    fn flooding_experiment_runs() {
        let stats = experiment(AlgorithmKind::Lcc).run(&Flooding, 3).unwrap();
        assert!(stats.discoveries >= 4, "each flow discovers at least once");
        assert!(stats.availability > 0.0);
        assert_eq!(stats.protocol, "flooding");
        assert_eq!(stats.algorithm, "lcc");
    }

    #[test]
    fn cluster_experiment_runs_and_costs_less_per_discovery() {
        let f = experiment(AlgorithmKind::Mobic).run(&Flooding, 5).unwrap();
        let c = experiment(AlgorithmKind::Mobic)
            .run(&ClusterRouting, 5)
            .unwrap();
        let f_cost = f.total_discovery_cost as f64 / f.discoveries.max(1) as f64;
        let c_cost = c.total_discovery_cost as f64 / c.discoveries.max(1) as f64;
        assert!(
            c_cost <= f_cost,
            "cluster discovery ({c_cost}) must not exceed flooding ({f_cost})"
        );
    }

    #[test]
    fn stationary_routes_never_break() {
        let mut exp = experiment(AlgorithmKind::Lcc);
        exp.scenario.mobility = MobilityKind::Stationary;
        let stats = exp.run(&Flooding, 7).unwrap();
        // No motion → no route ever breaks → no completed lifetimes,
        // and (dis)coveries equal the number of flows that had any
        // path (failed ones retry every probe).
        assert!(stats.route_lifetimes_s.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = experiment(AlgorithmKind::Mobic)
            .run(&ClusterRouting, 9)
            .unwrap();
        let b = experiment(AlgorithmKind::Mobic)
            .run(&ClusterRouting, 9)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "flow")]
    fn zero_flows_panics() {
        let mut exp = experiment(AlgorithmKind::Lcc);
        exp.flows = 0;
        let _ = exp.run(&Flooding, 0);
    }
}
