//! Cluster-based routing over MANET cluster topologies — the paper's
//! §5 future-work direction ("integrate the mobility metric with a
//! cluster based routing protocol"), built as a measurable extension.
//!
//! Two route-discovery disciplines are modeled:
//!
//! * [`Flooding`] — classic reactive discovery: every node rebroadcasts
//!   the route request once, so the discovery cost is the number of
//!   reachable nodes; routes are shortest paths in the full topology;
//! * [`ClusterRouting`] — CBRP-flavored discovery: only clusterheads
//!   and gateways forward the request, so the discovery cost is the
//!   size of the reachable *backbone*; routes run across the backbone
//!   (source and destination may be ordinary members).
//!
//! A cluster route additionally depends on the cluster structure that
//! produced it: when a relay that was a clusterhead at discovery time
//! loses that role, the route must be repaired (that is precisely why
//! cluster stability matters for routing). The [`experiment`] module
//! measures route lifetime and discovery overhead on live simulations
//! of each clustering algorithm, quantifying the paper's conjecture
//! that "more stable cluster formation can directly result in
//! significant improvement of performance".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
mod graph;
mod protocol;

pub use graph::ClusterTopology;
pub use protocol::{ClusterRouting, Discovery, Flooding, Route};
