//! Topology snapshots with cluster structure.

use std::collections::VecDeque;

use mobic_core::Role;
use mobic_geom::Vec2;

/// A snapshot of the network at one instant: node positions, the
/// unit-disk connectivity at the radio range, and each node's cluster
/// role.
///
/// # Examples
///
/// ```
/// use mobic_core::Role;
/// use mobic_geom::Vec2;
/// use mobic_net::NodeId;
/// use mobic_routing::ClusterTopology;
///
/// let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(50.0, 0.0), Vec2::new(100.0, 0.0)];
/// let roles = vec![
///     Role::Clusterhead,
///     Role::Member { ch: NodeId::new(0) },
///     Role::Clusterhead,
/// ];
/// let topo = ClusterTopology::new(&positions, &roles, 60.0);
/// assert!(topo.are_neighbors(0, 1));
/// assert!(!topo.are_neighbors(0, 2));
/// assert_eq!(topo.shortest_path(0, 2), Some(vec![0, 1, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    neighbors: Vec<Vec<usize>>,
    roles: Vec<Role>,
    gateways: Vec<bool>,
}

impl ClusterTopology {
    /// Builds the snapshot from positions, roles and the radio range.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or `range` is not
    /// positive and finite.
    #[must_use]
    pub fn new(positions: &[Vec2], roles: &[Role], range: f64) -> Self {
        assert_eq!(positions.len(), roles.len(), "one role per node");
        assert!(range > 0.0 && range.is_finite(), "invalid range {range}");
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].distance(positions[j]) <= range {
                    neighbors[i].push(j);
                    neighbors[j].push(i);
                }
            }
        }
        // A gateway hears ≥ 2 clusterheads (paper definition).
        let gateways = (0..n)
            .map(|i| {
                !roles[i].is_clusterhead()
                    && neighbors[i]
                        .iter()
                        .filter(|&&j| roles[j].is_clusterhead())
                        .count()
                        >= 2
            })
            .collect();
        ClusterTopology {
            neighbors,
            roles: roles.to_vec(),
            gateways,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// `true` if the snapshot has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// The role of node `i`.
    #[must_use]
    pub fn role(&self, i: usize) -> Role {
        self.roles[i]
    }

    /// `true` if node `i` is a gateway (non-clusterhead hearing two or
    /// more clusterheads).
    #[must_use]
    pub fn is_gateway(&self, i: usize) -> bool {
        self.gateways[i]
    }

    /// `true` if node `i` forwards route requests on the cluster
    /// backbone (clusterheads and gateways do; ordinary members do
    /// not).
    #[must_use]
    pub fn is_backbone(&self, i: usize) -> bool {
        self.roles[i].is_clusterhead() || self.gateways[i]
    }

    /// `true` if `a` and `b` are within radio range.
    #[must_use]
    pub fn are_neighbors(&self, a: usize, b: usize) -> bool {
        self.neighbors[a].contains(&b)
    }

    /// The neighbor list of `a`.
    #[must_use]
    pub fn neighbors(&self, a: usize) -> &[usize] {
        &self.neighbors[a]
    }

    /// Shortest path from `src` to `dst` in the full topology (BFS by
    /// hop count), inclusive of both endpoints. `None` if unreachable;
    /// `Some(vec![src])` if `src == dst`.
    #[must_use]
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        self.bfs_path(src, dst, |_| true)
    }

    /// Shortest path where every *intermediate* hop is a backbone node
    /// (clusterhead or gateway) — the route a CBRP-style discovery
    /// finds. Endpoints may be ordinary members.
    #[must_use]
    pub fn backbone_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        self.bfs_path(src, dst, |i| self.is_backbone(i))
    }

    /// Number of nodes that forward a flooded request from `src`:
    /// every node reachable from it (including itself).
    #[must_use]
    pub fn flood_cost(&self, src: usize) -> usize {
        self.reachable_count(src, |_| true)
    }

    /// Number of nodes that forward a backbone-restricted request from
    /// `src`: the source plus every reachable backbone node (through
    /// backbone-interior paths).
    #[must_use]
    pub fn backbone_cost(&self, src: usize) -> usize {
        self.reachable_count(src, |i| self.is_backbone(i))
    }

    /// BFS allowing only interior nodes satisfying `relay` (endpoints
    /// always allowed).
    fn bfs_path(
        &self,
        src: usize,
        dst: usize,
        relay: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.len();
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        seen[src] = true;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in &self.neighbors[u] {
                if seen[v] {
                    continue;
                }
                if v == dst {
                    // Reconstruct.
                    let mut path = vec![dst, u];
                    let mut cur = u;
                    while prev[cur] != usize::MAX {
                        cur = prev[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                if relay(v) {
                    seen[v] = true;
                    prev[v] = u;
                    q.push_back(v);
                }
            }
        }
        None
    }

    fn reachable_count(&self, src: usize, relay: impl Fn(usize) -> bool) -> usize {
        let n = self.len();
        let mut seen = vec![false; n];
        seen[src] = true;
        let mut q = VecDeque::from([src]);
        let mut count = 1;
        while let Some(u) = q.pop_front() {
            for &v in &self.neighbors[u] {
                if !seen[v] && relay(v) {
                    seen[v] = true;
                    count += 1;
                    q.push_back(v);
                }
            }
        }
        count
    }
}

/// Convenience: builds roles/positions from a
/// [`SampleView`](mobic_scenario::SampleView).
#[must_use]
pub fn topology_from_view(view: &mobic_scenario::SampleView<'_>, range: f64) -> ClusterTopology {
    let roles: Vec<Role> = view
        .nodes
        .iter()
        .map(mobic_core::ClusterNode::role)
        .collect();
    ClusterTopology::new(view.positions, &roles, range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_net::NodeId;

    /// Chain 0 — 1 — 2 — 3 — 4, range 60, spaced 50 m, with roles:
    /// CHs at 0 and 2 and 4, members in between (1 and 3 are gateways).
    fn chain() -> ClusterTopology {
        let positions: Vec<Vec2> = (0..5).map(|i| Vec2::new(i as f64 * 50.0, 0.0)).collect();
        let roles = vec![
            Role::Clusterhead,
            Role::Member { ch: NodeId::new(0) },
            Role::Clusterhead,
            Role::Member { ch: NodeId::new(2) },
            Role::Clusterhead,
        ];
        ClusterTopology::new(&positions, &roles, 60.0)
    }

    #[test]
    fn adjacency_and_gateways() {
        let t = chain();
        assert_eq!(t.len(), 5);
        assert!(t.are_neighbors(0, 1));
        assert!(!t.are_neighbors(0, 2));
        assert!(t.is_gateway(1), "hears CHs 0 and 2");
        assert!(t.is_gateway(3), "hears CHs 2 and 4");
        assert!(!t.is_gateway(0), "clusterheads are not gateways");
        assert!(t.is_backbone(0) && t.is_backbone(1) && t.is_backbone(2));
    }

    #[test]
    fn shortest_and_backbone_paths_agree_on_chain() {
        let t = chain();
        let p = t.shortest_path(0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.backbone_path(0, 4).unwrap(), p);
    }

    #[test]
    fn backbone_path_avoids_ordinary_members() {
        // Triangle detour: 0 (CH) - 1 (ordinary member of 0) - 2 (CH),
        // plus a gateway 3 linking 0 and 2. Backbone path must go via 3.
        let positions = vec![
            Vec2::new(0.0, 0.0),   // 0 CH
            Vec2::new(50.0, 0.0),  // 1 member (hears 0 and 2 → gateway!)
            Vec2::new(100.0, 0.0), // 2 CH
            Vec2::new(50.0, 40.0), // 3 member (hears 0 and 2 → gateway)
        ];
        // Make 1 an ordinary member by placing it to hear only 0.
        let positions = {
            let mut p = positions;
            p[1] = Vec2::new(30.0, -30.0); // hears 0 only (d to 2 ≈ 76 > 60)
            p
        };
        let roles = vec![
            Role::Clusterhead,
            Role::Member { ch: NodeId::new(0) },
            Role::Clusterhead,
            Role::Member { ch: NodeId::new(0) },
        ];
        let t = ClusterTopology::new(&positions, &roles, 65.0);
        assert!(!t.is_gateway(1));
        assert!(t.is_gateway(3));
        let p = t.backbone_path(0, 2).unwrap();
        assert_eq!(p, vec![0, 3, 2]);
    }

    #[test]
    fn unreachable_and_self_paths() {
        let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(1000.0, 0.0)];
        let roles = vec![Role::Clusterhead, Role::Clusterhead];
        let t = ClusterTopology::new(&positions, &roles, 50.0);
        assert_eq!(t.shortest_path(0, 1), None);
        assert_eq!(t.shortest_path(0, 0), Some(vec![0]));
    }

    #[test]
    fn discovery_costs() {
        let t = chain();
        // Flooding reaches all 5 nodes.
        assert_eq!(t.flood_cost(0), 5);
        // Backbone: src 0 + nodes 1..4 are all backbone here.
        assert_eq!(t.backbone_cost(0), 5);
        // Make the middle ordinary: a chain where only CHs/gateways relay.
        let positions: Vec<Vec2> = (0..4).map(|i| Vec2::new(i as f64 * 50.0, 0.0)).collect();
        let roles = vec![
            Role::Clusterhead,
            Role::Member { ch: NodeId::new(0) }, // hears only CH 0 → ordinary
            Role::Member { ch: NodeId::new(3) }, // hears only CH 3 → ordinary
            Role::Clusterhead,
        ];
        let t2 = ClusterTopology::new(&positions, &roles, 60.0);
        // From 0: nodes 1,2 are non-backbone, so the request stops.
        assert_eq!(t2.backbone_cost(0), 1);
        assert_eq!(t2.flood_cost(0), 4);
        // And no backbone path exists 0 → 3 while flooding finds one.
        assert_eq!(t2.backbone_path(0, 3), None);
        assert!(t2.shortest_path(0, 3).is_some());
    }

    #[test]
    fn backbone_cheaper_than_flooding_in_dense_cluster() {
        // A star cluster: CH 0 with 8 members, plus CH 9 far away.
        let mut positions = vec![Vec2::new(0.0, 0.0)];
        for k in 0..8 {
            let a = k as f64 * std::f64::consts::TAU / 8.0;
            positions.push(Vec2::from_polar(30.0, a));
        }
        let mut roles = vec![Role::Clusterhead];
        roles.extend(std::iter::repeat_n(Role::Member { ch: NodeId::new(0) }, 8));
        let t = ClusterTopology::new(&positions, &roles, 70.0);
        let flood = t.flood_cost(1);
        let backbone = t.backbone_cost(1);
        assert!(backbone < flood, "backbone {backbone} vs flood {flood}");
    }

    #[test]
    #[should_panic(expected = "one role per node")]
    fn mismatched_inputs_panic() {
        let _ = ClusterTopology::new(&[Vec2::ZERO], &[], 10.0);
    }
}
