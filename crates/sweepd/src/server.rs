//! The sweepd service: a bounded worker pool pulling cells from a
//! shared deadline-aware queue (idle workers steal whatever is next —
//! there is no per-worker ownership), a content-addressed
//! [`CellCache`], and a small HTTP API:
//!
//! * `POST /sweep` — submit a [`SweepSpec`]; cached cells are answered
//!   from the cache, the rest are enqueued;
//! * `GET /status` — queue/worker/cache counters as JSON;
//! * `GET /cell/<key>` — one cell's canonical JSON (`200`), its
//!   failure verdict (`500`), or `404` while pending/unknown;
//! * `POST /drain` — stop accepting sweeps, finish in-flight cells,
//!   then shut down.
//!
//! Every cell executes through
//! [`run_cell_stats`] → [`run_batch_supervised_stats`](mobic_scenario::run_batch_supervised_stats),
//! so a panicking or stuck seed becomes a typed verdict; the cell is
//! retried up to the configured budget, then parked as failed with
//! the verdict attached. With a checkpoint cadence configured
//! ([`ServerConfig::checkpoint_every`]) cells instead run through
//! [`run_cell_recoverable`]: workers publish rotated snapshots under
//! `<cache_dir>/ckpt/<cell key>/` and — after a kill, crash, or
//! parked attempt — resume each seed from its newest snapshot passing
//! the integrity and compatibility gates, degrading to older
//! snapshots and finally a cold start on corruption. `/status`
//! reports the per-worker resume/fallback tallies.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use mobic_scenario::{
    run_cell_recoverable, run_cell_stats, CellRecovery, CheckpointPolicy, Supervision, SweepCell,
    SweepSpec,
};
use mobic_trace::Stopwatch;

use crate::cache::CellCache;
use crate::http::{json_escape, read_request, write_response, Request};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port `0` for an ephemeral port (tests).
    pub addr: String,
    /// Cache directory (created if missing). A PR-4 `--out` directory
    /// works as a warm start.
    pub cache_dir: PathBuf,
    /// Worker threads; `0` means one per host core.
    pub workers: usize,
    /// Extra attempts after a cell's first failure before it is
    /// parked as failed.
    pub retry_budget: u32,
    /// Soft per-run wall-clock deadline handed to the supervised
    /// batch executor; `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Checkpoint cadence in seconds for cell computations. `Some(s)`
    /// routes every cell through the crash-recoverable runner
    /// ([`run_cell_recoverable`]): rotated snapshots land under
    /// `<cache_dir>/ckpt/<cell key>/` roughly every `s` wall-clock
    /// seconds, and a worker picking up a cell resumes each seed from
    /// its newest snapshot passing the integrity + compatibility
    /// gates (degrading to older snapshots, then a cold start, on
    /// corruption). `None` (the default) keeps the plain supervised
    /// path.
    pub checkpoint_every: Option<f64>,
    /// Per-connection socket read **and** write timeout: a peer that
    /// stalls sending its request or draining our response is cut
    /// off, never parking a service thread forever.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".to_string(),
            cache_dir: PathBuf::from("cache"),
            workers: 0,
            retry_budget: 2,
            deadline: None,
            checkpoint_every: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// One queued cell computation.
struct Job {
    key: String,
    cell: SweepCell,
    /// Retries remaining after the current attempt.
    attempts_left: u32,
    /// Fault hook carried over from the spec: remaining attempts that
    /// deliberately panic (see [`SweepSpec::fault_panic_attempts`]).
    panic_attempts: u32,
}

/// Per-worker crash-recovery tally, reported verbatim by `/status`.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerRecovery {
    /// Seeds this worker resumed from a snapshot.
    resumed: u64,
    /// Snapshots this worker rejected (corrupt or incompatible),
    /// degrading to an older snapshot or a cold start.
    fallbacks: u64,
}

/// Mutable service state, behind the one mutex.
struct Inner {
    queue: VecDeque<Job>,
    /// Per-worker current cell key; `None` = idle.
    busy: Vec<Option<String>>,
    /// Per-worker resume/fallback counters (same indexing as `busy`).
    recovery: Vec<WorkerRecovery>,
    /// Parked cells: key → failure verdict.
    failed: BTreeMap<String, String>,
    cache: CellCache,
    cache_hits: u64,
    cache_misses: u64,
    cells_computed: u64,
    /// Scenario runs *attempted* (seeds × attempts) — the counter the
    /// e2e test watches to prove a resubmitted spec runs nothing.
    runs_executed: u64,
    retries: u64,
    /// Worker threads abandoned past the supervised batch's join
    /// grace (see [`mobic_scenario::BatchStats`]).
    leaked_workers: u64,
    draining: bool,
    stop: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A worker can only poison this mutex by panicking mid-update;
        // every update leaves the state consistent line-by-line, so
        // recovering the guard is safe and keeps the service up.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running sweepd instance: bound listener + worker pool.
pub struct Server {
    listener: TcpListener,
    local: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    retry_budget: u32,
    io_timeout: Duration,
    clock: Stopwatch,
}

impl Server {
    /// Binds the listener, loads the cache, and spawns the worker
    /// pool. The service does not accept connections until
    /// [`Server::run`] is called.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the address cannot be bound or the
    /// cache directory cannot be opened.
    pub fn bind(cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        let cache = CellCache::open(&cfg.cache_dir)?;
        let n_workers = if cfg.workers == 0 {
            // Worker count shapes throughput only — every cell is an
            // independent (config, seeds) computation, so sizing the
            // pool from the host can never affect result bytes.
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                busy: vec![None; n_workers],
                recovery: vec![WorkerRecovery::default(); n_workers],
                failed: BTreeMap::new(),
                cache,
                cache_hits: 0,
                cache_misses: 0,
                cells_computed: 0,
                runs_executed: 0,
                retries: 0,
                leaked_workers: 0,
                draining: false,
                stop: false,
            }),
            work: Condvar::new(),
        });
        let options = WorkerOptions {
            deadline: cfg.deadline,
            checkpoint_every: cfg.checkpoint_every,
            ckpt_root: cfg.cache_dir.join("ckpt"),
        };
        let workers = (0..n_workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let options = options.clone();
                std::thread::spawn(move || worker_loop(&shared, idx, &options))
            })
            .collect();
        Ok(Server {
            listener,
            local,
            shared,
            workers,
            retry_budget: cfg.retry_budget,
            io_timeout: cfg.io_timeout,
            clock: Stopwatch::start(),
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Serves requests until a `POST /drain` lands **and** the queue
    /// and every worker are empty; then stops the pool and joins it.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] only for listener-level failures;
    /// per-connection errors are logged to stderr and dropped.
    pub fn run(mut self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Err(e) = self.handle(stream) {
                        eprintln!("mobic-sweepd: connection error: {e}");
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.drained() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        {
            let mut inner = self.shared.lock();
            inner.stop = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        Ok(())
    }

    /// `true` once draining was requested and all work has landed.
    fn drained(&self) -> bool {
        let inner = self.shared.lock();
        inner.draining && inner.queue.is_empty() && inner.busy.iter().all(Option::is_none)
    }

    /// Serves one connection (requests are small and handlers only
    /// briefly take the state lock, so serial handling suffices).
    ///
    /// Both socket directions carry `io_timeout`: a client that stalls
    /// mid-request or stops draining the response is cut off instead
    /// of parking the accept loop. An oversized request is answered
    /// with `413` — a protocol-level verdict the client can act on —
    /// rather than a bare connection drop.
    fn handle(&self, mut stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let request = match read_request(&mut stream) {
            Ok(request) => request,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let status = if e.to_string().contains("too large") {
                    413
                } else {
                    400
                };
                let body = format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string()));
                return write_response(&mut stream, status, &body);
            }
            Err(e) => return Err(e),
        };
        let (status, body) = self.route(&request);
        write_response(&mut stream, status, &body)
    }

    /// Dispatches one parsed request to its handler.
    fn route(&self, request: &Request) -> (u16, String) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/status") => (200, self.status_json()),
            ("GET", path) if path.starts_with("/cell/") => self.cell(&path["/cell/".len()..]),
            ("POST", "/sweep") => self.submit(&request.body),
            ("POST", "/drain") => {
                self.shared.lock().draining = true;
                self.shared.work.notify_all();
                (200, "{\"draining\":true}".to_string())
            }
            (method, path) => (
                404,
                format!(
                    "{{\"error\":\"no route for {} {}\"}}",
                    json_escape(method),
                    json_escape(path)
                ),
            ),
        }
    }

    /// `GET /cell/<key>`: the cell's canonical JSON, its failure
    /// verdict, or 404 while pending/unknown.
    fn cell(&self, key: &str) -> (u16, String) {
        let inner = self.shared.lock();
        if let Some(json) = inner.cache.get(key) {
            return (200, json.to_string());
        }
        if let Some(verdict) = inner.failed.get(key) {
            return (500, format!("{{\"error\":\"{}\"}}", json_escape(verdict)));
        }
        (404, "{\"error\":\"cell pending or unknown\"}".to_string())
    }

    /// `POST /sweep`: expand the spec, answer cached cells from the
    /// cache, enqueue the rest (re-queueing previously failed cells,
    /// deduplicating against queued and running ones).
    fn submit(&self, body: &str) -> (u16, String) {
        let spec = match SweepSpec::from_json(body) {
            Ok(spec) => spec,
            Err(e) => {
                return (
                    400,
                    format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string())),
                )
            }
        };
        let mut inner = self.shared.lock();
        if inner.draining {
            return (
                503,
                "{\"error\":\"draining; not accepting new sweeps\"}".to_string(),
            );
        }
        let mut keys = Vec::new();
        let mut cached = 0usize;
        let mut queued = 0usize;
        for cell in spec.cells() {
            let key = cell.key();
            if inner.cache.lookup(&cell).is_some() {
                inner.cache_hits += 1;
                cached += 1;
            } else {
                queued += 1;
                let in_flight = inner.queue.iter().any(|j| j.key == key)
                    || inner.busy.iter().flatten().any(|k| *k == key);
                if !in_flight {
                    inner.cache_misses += 1;
                    inner.failed.remove(&key);
                    inner.queue.push_back(Job {
                        key: key.clone(),
                        cell,
                        attempts_left: self.retry_budget,
                        panic_attempts: spec.fault_panic_attempts,
                    });
                }
            }
            keys.push(format!("\"{}\"", json_escape(&key)));
        }
        drop(inner);
        self.shared.work.notify_all();
        (
            200,
            format!(
                "{{\"cells\":[{}],\"cached\":{cached},\"queued\":{queued}}}",
                keys.join(",")
            ),
        )
    }

    /// `GET /status`: the full counter set as hand-rolled JSON.
    fn status_json(&self) -> String {
        let inner = self.shared.lock();
        let running = inner.busy.iter().flatten().count();
        let lookups = inner.cache_hits + inner.cache_misses;
        #[allow(clippy::cast_precision_loss)] // counters stay far below 2^52
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            inner.cache_hits as f64 / lookups as f64
        };
        let workers: Vec<String> = inner
            .busy
            .iter()
            .map(|b| match b {
                Some(key) => format!("\"{}\"", json_escape(key)),
                None => "null".to_string(),
            })
            .collect();
        let recovery: Vec<String> = inner
            .recovery
            .iter()
            .map(|r| {
                format!(
                    "{{\"resumed\":{},\"fallbacks\":{}}}",
                    r.resumed, r.fallbacks
                )
            })
            .collect();
        let resumed_runs: u64 = inner.recovery.iter().map(|r| r.resumed).sum();
        let snapshot_fallbacks: u64 = inner.recovery.iter().map(|r| r.fallbacks).sum();
        format!(
            "{{\"queued\":{},\"running\":{running},\"cached\":{},\"failed\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{hit_rate:.4},\
             \"cells_computed\":{},\"runs_executed\":{},\"retries\":{},\
             \"resumed_runs\":{resumed_runs},\"snapshot_fallbacks\":{snapshot_fallbacks},\
             \"leaked_workers\":{},\"uptime_ms\":{:.1},\"draining\":{},\
             \"workers\":[{}],\"recovery\":[{}]}}",
            inner.queue.len(),
            inner.cache.len(),
            inner.failed.len(),
            inner.cache_hits,
            inner.cache_misses,
            inner.cells_computed,
            inner.runs_executed,
            inner.retries,
            inner.leaked_workers,
            self.clock.elapsed_ms(),
            inner.draining,
            workers.join(","),
            recovery.join(",")
        )
    }
}

/// Per-worker execution knobs, shared by every worker thread.
#[derive(Debug, Clone)]
struct WorkerOptions {
    /// Soft per-run deadline for the plain supervised path.
    deadline: Option<Duration>,
    /// Checkpoint cadence in seconds; `Some` switches cells to the
    /// crash-recoverable runner.
    checkpoint_every: Option<f64>,
    /// Snapshot root (`<cache_dir>/ckpt`); each cell gets a
    /// subdirectory named after its key.
    ckpt_root: PathBuf,
}

/// One worker: pull the next job, compute it under supervision, store
/// or retry/park, repeat until the stop flag is up and the queue dry.
fn worker_loop(shared: &Shared, idx: usize, options: &WorkerOptions) {
    loop {
        let mut inner = shared.lock();
        let job = loop {
            if let Some(job) = inner.queue.pop_front() {
                break Some(job);
            }
            if inner.stop {
                break None;
            }
            inner = shared
                .work
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        };
        let Some(mut job) = job else {
            return;
        };
        inner.busy[idx] = Some(job.key.clone());
        inner.runs_executed += job.cell.seeds.len() as u64;
        drop(inner);

        let supervision = Supervision {
            soft_deadline: options.deadline,
            // The spec-level fault hook: panic the first seed of this
            // attempt, exactly like the CI fault smoke does locally.
            panic_on: (job.panic_attempts > 0).then_some(0),
            ..Supervision::default()
        };
        let (result, recovered, leaked) = match options.checkpoint_every {
            Some(every_s) => {
                // Crash-recoverable path: snapshots under
                // `ckpt/<key>/seed-<n>/`, resumed on pickup. A parked
                // or killed attempt leaves its snapshots behind, so
                // the retry — or a resubmission after a crash —
                // resumes instead of recomputing (`:` is not portable
                // in file names, same mapping as the cell cache).
                let dir = options.ckpt_root.join(job.key.replace(':', "-"));
                let policy = CheckpointPolicy { every_s, keep: 2 };
                let (result, recovery) =
                    run_cell_recoverable(&job.cell, &supervision, &dir, policy);
                (result, recovery, 0u32)
            }
            None => {
                let (result, stats) = run_cell_stats(&job.cell, &supervision);
                (result, CellRecovery::default(), stats.leaked_workers)
            }
        };

        let mut inner = shared.lock();
        inner.busy[idx] = None;
        inner.recovery[idx].resumed += u64::from(recovered.resumed);
        inner.recovery[idx].fallbacks += u64::from(recovered.fallbacks);
        inner.leaked_workers += u64::from(leaked);
        match result {
            Ok(outcome) => {
                let json = outcome.to_json_pretty();
                match inner.cache.put(&job.key, &json) {
                    Ok(()) => inner.cells_computed += 1,
                    Err(e) => {
                        let verdict = format!("cache write failed: {e}");
                        inner.failed.insert(job.key.clone(), verdict);
                    }
                }
            }
            Err(e) => {
                job.panic_attempts = job.panic_attempts.saturating_sub(1);
                if job.attempts_left > 0 {
                    job.attempts_left -= 1;
                    inner.retries += 1;
                    inner.queue.push_back(job);
                } else {
                    inner.failed.insert(job.key.clone(), e.to_string());
                }
            }
        }
        drop(inner);
        shared.work.notify_all();
    }
}
