//! The `mobic-sweepd` binary: bind, announce, serve until drained.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use mobic_sweepd::{Server, ServerConfig};

const USAGE: &str = "mobic-sweepd — sweep orchestration service (MOBIC reproduction)

USAGE:
  mobic-sweepd [OPTIONS]

OPTIONS:
  --addr <host:port>   listen address; port 0 = ephemeral [127.0.0.1:7700]
  --cache <dir>        cell cache directory (created if missing; a
                       `mobic-cli sweep --out` dir works as a warm
                       start)                              [cache]
  --workers <n>        worker threads; 0 = one per core    [0]
  --retries <n>        extra attempts per failing cell     [2]
  --deadline <s>       soft per-run wall-clock deadline (supervised
                       execution; stuck runs become verdicts)
  --checkpoint-every <s>
                       checkpoint cells every ~s seconds of wall
                       clock: snapshots land under <cache>/ckpt/ and
                       killed or crashed attempts resume instead of
                       recomputing (see docs/OPERATIONS.md)  [off]
  --io-timeout <s>     per-connection socket read/write timeout [10]
  --help               this text

ENDPOINTS:
  POST /sweep          submit a sweep spec (JSON)
  GET  /status         queue/worker/cache counters (JSON)
  GET  /cell/<key>     one cell's outcome JSON / verdict / 404
  POST /drain          finish in-flight cells, then exit
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(&cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot start on {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // The announce line is the startup handshake: scripts/ci.sh (and
    // operators' tmux panes) grep it for the resolved address, so it
    // must be flushed even when stdout is a pipe or file.
    let mut stdout = std::io::stdout();
    let _ = writeln!(
        stdout,
        "mobic-sweepd listening on {} (cache: {}, workers: {})",
        server.addr(),
        cfg.cache_dir.display(),
        server.worker_count()
    );
    let _ = stdout.flush();
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Parses the argument vector; `Ok(None)` means `--help`.
fn parse(args: &[String]) -> Result<Option<ServerConfig>, String> {
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<&String, String> {
            i += 1;
            args.get(i).ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--help" | "-h" | "help" => return Ok(None),
            "--addr" => cfg.addr = value()?.clone(),
            "--cache" => cfg.cache_dir = PathBuf::from(value()?),
            "--workers" => {
                cfg.workers = value()?
                    .parse()
                    .map_err(|_| "--workers: expected a number".to_string())?;
            }
            "--retries" => {
                cfg.retry_budget = value()?
                    .parse()
                    .map_err(|_| "--retries: expected a number".to_string())?;
            }
            "--deadline" => {
                let s: f64 = value()?
                    .parse()
                    .map_err(|_| "--deadline: expected seconds".to_string())?;
                if s <= 0.0 {
                    return Err("--deadline must be positive".to_string());
                }
                cfg.deadline = Some(Duration::from_secs_f64(s));
            }
            "--checkpoint-every" => {
                let s: f64 = value()?
                    .parse()
                    .map_err(|_| "--checkpoint-every: expected seconds".to_string())?;
                if s <= 0.0 {
                    return Err("--checkpoint-every must be positive".to_string());
                }
                cfg.checkpoint_every = Some(s);
            }
            "--io-timeout" => {
                let s: f64 = value()?
                    .parse()
                    .map_err(|_| "--io-timeout: expected seconds".to_string())?;
                if s <= 0.0 {
                    return Err("--io-timeout must be positive".to_string());
                }
                cfg.io_timeout = Duration::from_secs_f64(s);
            }
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    Ok(Some(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_line(line: &str) -> Result<Option<ServerConfig>, String> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = parse_line("").unwrap().unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7700");
        assert_eq!(cfg.workers, 0);
        assert_eq!(cfg.retry_budget, 2);
        assert_eq!(cfg.deadline, None);
        assert_eq!(cfg.checkpoint_every, None);
        assert_eq!(cfg.io_timeout, Duration::from_secs(10));

        let cfg = parse_line("--addr 0.0.0.0:81 --cache c --workers 3 --retries 1 --deadline 30")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:81");
        assert_eq!(cfg.cache_dir, PathBuf::from("c"));
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.retry_budget, 1);
        assert_eq!(cfg.deadline, Some(Duration::from_secs(30)));

        let cfg = parse_line("--checkpoint-every 45 --io-timeout 2.5")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.checkpoint_every, Some(45.0));
        assert_eq!(cfg.io_timeout, Duration::from_secs_f64(2.5));
    }

    #[test]
    fn help_and_errors() {
        assert!(parse_line("--help").unwrap().is_none());
        assert!(parse_line("--workers").is_err());
        assert!(parse_line("--workers lots").is_err());
        assert!(parse_line("--deadline 0").is_err());
        assert!(parse_line("--checkpoint-every 0").is_err());
        assert!(parse_line("--checkpoint-every soon").is_err());
        assert!(parse_line("--io-timeout -1").is_err());
        assert!(parse_line("--frobnicate").is_err());
    }
}
