//! `mobic-sweepd`: a long-running sweep orchestration service for the
//! MOBIC simulator — ROADMAP item 2's "the simulator becomes a
//! service".
//!
//! The service accepts declarative sweep specs
//! ([`SweepSpec`](mobic_scenario::SweepSpec)) over a hand-rolled
//! HTTP/1.1 API, expands them into content-addressed cells, and never
//! computes the same `(config, seeds)` cell twice: results live in a
//! [`CellCache`] keyed by
//! [`cell_key`](mobic_scenario::cell_key) and are served byte-for-byte
//! identical to what `mobic-cli sweep` would write locally. Cells that
//! do need computing flow through a bounded worker pool into
//! [`run_cell`](mobic_scenario::run_cell) →
//! `run_batch_supervised`, so panicking or stuck runs become typed
//! verdicts, are retried up to a budget, and are finally parked as
//! failed with the verdict attached — one poisoned cell never takes
//! the service down.
//!
//! Zero external dependencies: like `mobic-lint`, this crate builds
//! with the standard library plus workspace crates only, so it works
//! where the cargo registry is unreachable. JSON *parsing* of specs
//! and outcomes is delegated to `mobic-scenario` (which owns the
//! schema); the service's own responses are assembled by hand.
//!
//! See `docs/OPERATIONS.md` for the operator's guide (endpoints,
//! cache layout, crash recovery) and `tests/sweepd_service.rs` for an
//! in-process end-to-end exercise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod server;

pub use cache::CellCache;
pub use server::{Server, ServerConfig};
