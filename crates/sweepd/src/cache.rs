//! The content-addressed result cache: one JSON file per sweep cell,
//! named after the cell's [`cell_key`](mobic_scenario::cell_key), with
//! an in-memory `BTreeMap` index loaded at startup.
//!
//! The cache stores the **exact bytes** of
//! [`SweepOutcome::to_json_pretty`] — the same serialization
//! `mobic-cli sweep --out` writes — so a cached cell is
//! indistinguishable from a freshly computed one. Files that fail to
//! parse (truncated, corrupted, or foreign) are ignored at load and
//! lookup time: a damaged cell is recomputed, never served.
//!
//! A PR-4 `--out` directory doubles as a warm cache: its
//! `cell_<algorithm>_tx<x>.json` files are matched by name on lookup,
//! verified against the requesting cell's shape, and adopted under
//! the keyed file name (same bytes, so byte-identity is preserved).
//! Like `--resume`, this trusts the operator's assertion that the
//! directory was produced from the same base scenario.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::PathBuf;

use mobic_scenario::{SweepCell, SweepOutcome};
use mobic_trace::write_atomic;

/// The on-disk + in-memory cell cache. All writes go through
/// [`write_atomic`], so a crash mid-write never leaves a truncated
/// cell (it leaves no cell, which the parse gate treats as absent).
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    /// Cell key (`fnv1a64:…`) → canonical outcome JSON.
    index: BTreeMap<String, String>,
}

/// The file name a key is stored under (`:` is not portable in file
/// names, so it becomes `-`): `fnv1a64-<16 hex digits>.json`.
fn file_name_for_key(key: &str) -> String {
    format!("{}.json", key.replace(':', "-"))
}

/// Inverse of [`file_name_for_key`] on the file stem; `None` for
/// legacy (`cell_*`) and foreign names.
fn key_from_file_stem(stem: &str) -> Option<String> {
    let hex = stem.strip_prefix("fnv1a64-")?;
    (hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| format!("fnv1a64:{hex}"))
}

impl CellCache {
    /// Opens (creating if needed) a cache directory and indexes every
    /// parseable keyed cell file in it.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the directory cannot be created or
    /// listed; unreadable or unparseable individual files are skipped,
    /// not fatal.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CellCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = BTreeMap::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(key) = key_from_file_stem(stem) else {
                continue; // legacy cells are matched lazily in lookup()
            };
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            if SweepOutcome::from_json(&text).is_some() {
                index.insert(key, text);
            }
        }
        Ok(CellCache { dir, index })
    }

    /// Number of indexed (keyed, parseable) cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if no cell is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The canonical JSON of a cached cell, by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.index.get(key).map(String::as_str)
    }

    /// Looks a cell up by content address, falling back to the cell's
    /// legacy `--out` file name. A legacy hit is verified against the
    /// cell's shape (algorithm, x, seed count), re-indexed under the
    /// keyed name with its exact bytes, and served.
    #[must_use]
    pub fn lookup(&mut self, cell: &SweepCell) -> Option<String> {
        let key = cell.key();
        if let Some(text) = self.index.get(&key) {
            return Some(text.clone());
        }
        let legacy = self.dir.join(cell.legacy_file_name());
        let text = fs::read_to_string(legacy).ok()?;
        let out = SweepOutcome::from_json(&text)?;
        let matches = out.runs == cell.seeds.len()
            && out.algorithm == cell.config.algorithm.name()
            && out.x == cell.x;
        if !matches {
            return None;
        }
        // Adoption is an optimization; if the keyed copy cannot be
        // written the legacy file still serves this lookup.
        let _ = self.put(&key, &text);
        Some(text)
    }

    /// Stores a cell: atomic write to disk, then index. The JSON must
    /// be the canonical [`SweepOutcome::to_json_pretty`] bytes.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the atomic write fails; the index
    /// is only updated after the file landed.
    pub fn put(&mut self, key: &str, json: &str) -> io::Result<()> {
        write_atomic(self.dir.join(file_name_for_key(key)), json)?;
        self.index.insert(key.to_string(), json.to_string());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_and_file_name_round_trip() {
        let key = "fnv1a64:0123456789abcdef";
        let name = file_name_for_key(key);
        assert_eq!(name, "fnv1a64-0123456789abcdef.json");
        assert_eq!(
            key_from_file_stem("fnv1a64-0123456789abcdef").as_deref(),
            Some(key)
        );
    }

    #[test]
    fn foreign_and_legacy_stems_are_not_keys() {
        assert_eq!(key_from_file_stem("cell_mobic_tx150"), None);
        assert_eq!(key_from_file_stem("fnv1a64-short"), None);
        assert_eq!(key_from_file_stem("fnv1a64-zzzzzzzzzzzzzzzz"), None);
        assert_eq!(key_from_file_stem("notes"), None);
    }
}
