//! A deliberately minimal HTTP/1.1 layer over `std::net` — just
//! enough for the sweepd API (tiny JSON bodies, `Connection: close`
//! on every exchange), hand-rolled because the cargo registry is
//! unreachable in-container and the service must build with the
//! standard library alone.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Requests larger than this are rejected outright — the server
/// answers `413 Payload Too Large` without reading the body. The
/// biggest legitimate payload is a sweep spec, which is a few KiB.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, path, and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// The request path, e.g. `/cell/fnv1a64:0123456789abcdef`.
    pub path: String,
    /// The request body, `Content-Length` bytes decoded as UTF-8
    /// (lossily — the API only carries JSON, which is UTF-8 anyway).
    pub body: String,
}

/// Byte offset of the `\r\n\r\n` head/body separator, if present.
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one HTTP request from `stream`.
///
/// Generic over `Read` so the parser is unit-testable on byte slices;
/// the caller is responsible for socket read timeouts.
///
/// # Errors
///
/// Returns an [`io::Error`] for a closed connection, an oversized
/// request, a malformed request line, or a socket failure.
pub fn read_request(stream: &mut impl Read) -> io::Result<Request> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_len]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed request line {request_line:?}"),
        ));
    };
    let method = method.to_string();
    let path = path.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = buf[head_len + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Writes one `Connection: close` JSON response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// The client side: performs one request against a sweepd service and
/// returns `(status, body)`. Used by `mobic-cli sweep --server` and
/// the test suite.
///
/// # Errors
///
/// Returns an [`io::Error`] for connection failures, timeouts, or a
/// malformed response.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let head_len = header_end(&response).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "response without header terminator",
        )
    })?;
    let head = String::from_utf8_lossy(&response[..head_len]).into_owned();
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = String::from_utf8_lossy(&response[head_len + 4..]).into_owned();
    Ok((status, body))
}

/// Escapes a string for embedding in a hand-rolled JSON document
/// (the status endpoint and error bodies are assembled with
/// `format!`, not a serializer — sweepd has no serde).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.body, "hello world");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /status HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/status");
        assert_eq!(req.body, "");
    }

    #[test]
    fn truncated_requests_error_instead_of_hanging_state() {
        assert!(read_request(&mut &b"GET /status HT"[..]).is_err());
        let short_body = b"POST /sweep HTTP/1.1\r\nContent-Length: 99\r\n\r\nabc";
        assert!(read_request(&mut &short_body[..]).is_err());
        assert!(read_request(&mut &b"\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn responses_carry_status_and_exact_length() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "{\"error\":\"nope\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("Content-Length: 16\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"nope\"}"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 413, "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 413 Payload Too Large\r\n"),
            "{text}"
        );
    }

    #[test]
    fn oversized_requests_error_without_reading_the_body() {
        // The declared body is over the cap: the parser must reject it
        // from the header alone (the body bytes are never consumed),
        // with a message the server maps to 413.
        let declared = MAX_REQUEST_BYTES + 1;
        let raw = format!("POST /sweep HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("too large"), "{err}");

        // An unterminated head that keeps growing is cut off at the
        // same cap instead of buffering without bound.
        let endless = vec![b'A'; MAX_REQUEST_BYTES + 4096];
        let err = read_request(&mut &endless[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("too large"), "{err}");
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
