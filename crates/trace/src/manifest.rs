//! Per-run reproducibility manifests.
//!
//! Every `results/*.json` artifact the experiment binaries write is
//! accompanied by a `*.manifest.json` file: one [`RunManifest`] per
//! simulation run that contributed to the artifact, recording the
//! exact configuration (echoed verbatim and content-hashed), the
//! seed, the crate version, the fast-path decision, and the headline
//! counters. Given a manifest, anyone can re-run the cell and check
//! the counters — no spelunking through experiment source required.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Version of the manifest format itself ([`RunManifest::schema`]).
pub const MANIFEST_SCHEMA: u32 = 1;

/// The deterministic counters a re-run must reproduce exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestCounters {
    /// Discrete events processed by the simulation core.
    pub events: u64,
    /// Hello broadcasts sent.
    pub hello_broadcasts: u64,
    /// Successful hello deliveries.
    pub deliveries: u64,
    /// Receptions destroyed by the MAC collision model.
    pub mac_collisions: u64,
    /// Spatial-index full refresh passes (0 on the brute-force path).
    pub index_refreshes: u64,
    /// Clusterhead changes over the whole run (including the initial
    /// election) — the headline reproducibility check.
    pub clusterhead_changes_total: u64,
}

/// Everything needed to independently re-derive one simulation run.
///
/// Contains **no timestamps and no wall-clock data**: two manifests of
/// the same `(config, seed)` on any machine are byte-identical, so
/// manifests can be diffed to verify a reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest format version ([`MANIFEST_SCHEMA`]).
    pub schema: u32,
    /// Version of the workspace that produced the run.
    pub crate_version: String,
    /// Content hash of the canonical config JSON (see
    /// [`config_hash`]) — a quick identity check before diffing the
    /// full echo.
    pub config_hash: String,
    /// The full scenario configuration, echoed verbatim.
    pub config: serde_json::Value,
    /// The master seed of the run.
    pub seed: u64,
    /// The clustering algorithm that ran (redundant with `config`,
    /// convenient for grepping).
    pub algorithm: String,
    /// Whether the spatial-index fast path was taken.
    pub indexed: bool,
    /// The deterministic counters of the run.
    pub counters: ManifestCounters,
}

/// 64-bit FNV-1a — the stable, dependency-free content hash used for
/// [`config_hash`]. Not cryptographic; it only needs to distinguish
/// configs and stay identical across platforms and releases.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hashes a canonical (single-line `serde_json`) config string into
/// the manifest's `config_hash` field, e.g.
/// `"fnv1a64:b1c3f00ddeadbeef"`.
#[must_use]
pub fn config_hash(canonical_json: &str) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(canonical_json.as_bytes()))
}

/// The manifest path that accompanies a results artifact:
/// `results/fig3.json` → `results/fig3.manifest.json`.
#[must_use]
pub fn manifest_path_for(results_path: impl AsRef<Path>) -> PathBuf {
    let path = results_path.as_ref();
    let stem = path
        .file_stem()
        .map_or_else(|| "results".into(), |s| s.to_string_lossy().into_owned());
    path.with_file_name(format!("{stem}.manifest.json"))
}

/// Writes the manifest array for a results artifact next to it (see
/// [`manifest_path_for`]), creating parent directories, and returns
/// the path written. The write is atomic (see
/// [`write_atomic`](crate::write_atomic)) so a killed process never
/// leaves a truncated manifest.
///
/// # Errors
///
/// Returns I/O errors; serialization of a [`RunManifest`] cannot
/// fail.
pub fn write_manifests(
    results_path: impl AsRef<Path>,
    manifests: &[RunManifest],
) -> io::Result<PathBuf> {
    let path = manifest_path_for(results_path);
    let json = serde_json::to_string_pretty(manifests)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    crate::write_atomic(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn config_hash_is_prefixed_and_stable() {
        let h = config_hash("{\"n_nodes\":50}");
        assert!(h.starts_with("fnv1a64:"), "{h}");
        assert_eq!(h.len(), "fnv1a64:".len() + 16);
        assert_eq!(h, config_hash("{\"n_nodes\":50}"));
        assert_ne!(h, config_hash("{\"n_nodes\":51}"));
    }

    #[test]
    fn manifest_path_swaps_extension() {
        assert_eq!(
            manifest_path_for("results/fig3.json"),
            PathBuf::from("results/fig3.manifest.json")
        );
        assert_eq!(
            manifest_path_for("BENCH_scaling.json"),
            PathBuf::from("BENCH_scaling.manifest.json")
        );
    }

    fn sample() -> RunManifest {
        RunManifest {
            schema: MANIFEST_SCHEMA,
            crate_version: "0.1.0".to_string(),
            config_hash: config_hash("{}"),
            config: serde_json::json!({ "n_nodes": 50 }),
            seed: 42,
            algorithm: "mobic".to_string(),
            indexed: true,
            counters: ManifestCounters {
                events: 100,
                hello_broadcasts: 90,
                deliveries: 80,
                mac_collisions: 0,
                index_refreshes: 10,
                clusterhead_changes_total: 3,
            },
        }
    }

    #[test]
    fn manifest_round_trips_and_is_deterministic() {
        let m = sample();
        let a = serde_json::to_string_pretty(&m).unwrap();
        let b = serde_json::to_string_pretty(&m.clone()).unwrap();
        assert_eq!(a, b);
        let back: RunManifest = serde_json::from_str(&a).unwrap();
        assert_eq!(back, m);
        assert!(a.contains("\"schema\": 1"));
    }

    #[test]
    fn write_manifests_lands_next_to_results() {
        let dir = std::env::temp_dir().join("mobic-trace-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let results = dir.join("fig9.json");
        let written = write_manifests(&results, &[sample()]).unwrap();
        assert_eq!(written, dir.join("fig9.manifest.json"));
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(text.contains("config_hash"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
