//! Scoped wall-clock phase profiling.
//!
//! This module is the workspace's **only** blessed home for wall-clock
//! reads (`mobic-lint`'s `ambient-entropy` rule bans `Instant` and
//! `SystemTime` everywhere else outside the operator tooling crates).
//! Everything measured here flows exclusively into `#[serde(skip)]`
//! fields — wall-clock numbers describe how fast a run executed, never
//! what it computed, so they must not reach serialized `RunResult`
//! artifacts.

use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Wall-clock durations of one run's phases, in milliseconds.
///
/// Carried inside `RunResult.perf` but always `#[serde(skip)]`-ed
/// there: wall-clock numbers describe *how fast* a run executed,
/// never *what* it computed, and identical `(config, seed)` runs must
/// keep byte-identical JSON artifacts.
///
/// The phases partition `run_scenario`:
///
/// * **setup** — config validation, mobility/radio/loss construction,
///   initial event scheduling, index build;
/// * **event loop** — the discrete-event loop itself (plus the final
///   pending-reception flush);
/// * **aggregate** — folding logs and series into the final metrics.
///
/// Reporting (printing tables, writing files) happens in the caller
/// and is timed there when requested (`mobic-cli --profile`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Scenario construction before the first event.
    pub setup_ms: f64,
    /// The discrete-event loop.
    pub event_loop_ms: f64,
    /// Metric aggregation after the last event.
    pub aggregate_ms: f64,
    /// How many per-hello clustering evaluations the event loop proved
    /// unnecessary and skipped (dirty-set incremental reclustering).
    /// Not a duration, but it lives with the timings because it
    /// explains them: a high skip count is *why* the event loop got
    /// cheaper. Zero under `recluster: full`.
    #[serde(default)]
    pub elections_skipped: u64,
}

impl PhaseTimings {
    /// Sum of all phases.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.setup_ms + self.event_loop_ms + self.aggregate_ms
    }

    /// Accumulates another run's timings (for sweep-level summaries).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.setup_ms += other.setup_ms;
        self.event_loop_ms += other.event_loop_ms;
        self.aggregate_ms += other.aggregate_ms;
        self.elections_skipped += other.elections_skipped;
    }
}

impl fmt::Display for PhaseTimings {
    /// Renders an aligned, human-readable phase table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "phase wall-clock timings:")?;
        writeln!(f, "  setup       {:>10.2} ms", self.setup_ms)?;
        writeln!(f, "  event loop  {:>10.2} ms", self.event_loop_ms)?;
        writeln!(f, "  aggregation {:>10.2} ms", self.aggregate_ms)?;
        writeln!(f, "  total       {:>10.2} ms", self.total_ms())?;
        write!(f, "  elections skipped {:>10}", self.elections_skipped)
    }
}

/// A restartable stopwatch for timing consecutive phases.
///
/// # Examples
///
/// ```
/// use mobic_trace::{PhaseClock, PhaseTimings};
///
/// let mut clock = PhaseClock::start();
/// let mut phases = PhaseTimings::default();
/// // ... set the scenario up ...
/// phases.setup_ms = clock.lap_ms();
/// // ... run the event loop ...
/// phases.event_loop_ms = clock.lap_ms();
/// assert!(phases.total_ms() >= 0.0);
/// ```
#[derive(Debug)]
pub struct PhaseClock {
    t0: Instant,
}

impl PhaseClock {
    /// Starts timing the first phase now.
    #[must_use]
    pub fn start() -> Self {
        PhaseClock { t0: Instant::now() }
    }

    /// Ends the current phase, returning its duration in
    /// milliseconds, and starts timing the next one.
    pub fn lap_ms(&mut self) -> f64 {
        let now = Instant::now();
        let ms = now.duration_since(self.t0).as_secs_f64() * 1e3;
        self.t0 = now;
        ms
    }
}

/// A one-shot elapsed-time reader for deadlines and coarse run
/// timing.
///
/// Where [`PhaseClock`] times consecutive phases, `Stopwatch` answers
/// "how long since I started?" — the shape supervision deadlines
/// (`run_batch_supervised`) and the runner's total wall-clock counter
/// need. Keeping both here means no other crate has to name `Instant`
/// directly.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mobic_trace::Stopwatch;
///
/// let sw = Stopwatch::start();
/// assert!(sw.elapsed() >= Duration::ZERO);
/// assert!(sw.elapsed_ms() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { t0: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.t0.elapsed()
    }

    /// Elapsed time in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// How much of a budget of `total` remains, saturating at zero.
    /// The supervision loop uses this to turn an absolute deadline
    /// into successive `recv_timeout` windows.
    #[must_use]
    pub fn remaining_of(&self, total: Duration) -> Duration {
        total.saturating_sub(self.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_elapsed_grows_and_budget_saturates() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert_eq!(sw.remaining_of(Duration::ZERO), Duration::ZERO);
        assert!(sw.remaining_of(Duration::from_secs(3600)) > Duration::ZERO);
    }

    #[test]
    fn laps_are_non_negative_and_restart() {
        let mut c = PhaseClock::start();
        let a = c.lap_ms();
        let b = c.lap_ms();
        assert!(a >= 0.0);
        assert!(b >= 0.0);
    }

    #[test]
    fn totals_and_accumulation() {
        let mut t = PhaseTimings {
            setup_ms: 1.0,
            event_loop_ms: 2.0,
            aggregate_ms: 3.0,
            elections_skipped: 10,
        };
        assert!((t.total_ms() - 6.0).abs() < 1e-12);
        t.accumulate(&PhaseTimings {
            setup_ms: 0.5,
            event_loop_ms: 0.5,
            aggregate_ms: 0.5,
            elections_skipped: 7,
        });
        assert!((t.total_ms() - 7.5).abs() < 1e-12);
        assert_eq!(t.elections_skipped, 17);
    }

    #[test]
    fn display_lists_every_phase() {
        let text = PhaseTimings::default().to_string();
        for needle in [
            "setup",
            "event loop",
            "aggregation",
            "total",
            "elections skipped",
        ] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }

    #[test]
    fn timings_are_serializable_on_their_own() {
        // `RunResult.perf` skips them, but sweep summaries may still
        // want to persist aggregates explicitly.
        let t = PhaseTimings {
            setup_ms: 1.0,
            event_loop_ms: 2.0,
            aggregate_ms: 3.0,
            elections_skipped: 4,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // Pre-counter payloads still deserialize (the counter defaults).
        let old: PhaseTimings =
            serde_json::from_str(r#"{"setup_ms":1.0,"event_loop_ms":2.0,"aggregate_ms":3.0}"#)
                .unwrap();
        assert_eq!(old.elections_skipped, 0);
    }
}
