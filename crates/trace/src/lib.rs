//! Structured run observability for the MOBIC simulation substrate.
//!
//! Three concerns live here, all shared by the scenario runner, the
//! CLI, and the experiment binaries:
//!
//! * **Event tracing** — [`TraceEvent`] is the typed vocabulary of
//!   things that happen inside a run (hello tx/rx, losses, MAC
//!   collisions, head elections and resignations, cluster merges,
//!   index refreshes). The simulation loop emits them into a
//!   [`TraceSink`]; [`JsonlSink`] persists one JSON object per line,
//!   [`NullSink`] discards them at zero cost (the loop checks
//!   [`TraceSink::enabled`] once and skips event construction
//!   entirely when it is `false`).
//! * **Phase profiling** — [`PhaseTimings`] carries wall-clock
//!   durations of a run's setup / event-loop / aggregation phases,
//!   measured with [`PhaseClock`]. Timings ride along in
//!   `RunResult.perf` but are *excluded from serialization* so that
//!   identical `(config, seed)` runs keep byte-identical JSON.
//! * **Run manifests** — [`RunManifest`] records everything needed to
//!   independently re-derive a result artifact: the full config echo
//!   plus its [`config_hash`], the seed, the crate version, the
//!   fast-path decision, and the headline counters. Experiment
//!   binaries write one manifest array next to every `results/*.json`
//!   file via [`write_manifests`].
//! * **Atomic artifacts** — every results file in the workspace is
//!   published through [`write_atomic`] (temp file in the destination
//!   directory + rename), so a killed process never leaves a
//!   truncated artifact behind and interrupted sweeps can resume by
//!   trusting whatever cell files exist.
//!
//! # Determinism contract
//!
//! Nothing in a trace or a manifest depends on wall-clock time, thread
//! scheduling, or the machine: two runs of the same `(config, seed)`
//! produce **byte-identical** JSONL traces and manifests. Wall-clock
//! quantities exist only in [`PhaseTimings`], which is never
//! serialized. The `trace_determinism` integration suite asserts both
//! properties.
//!
//! # Examples
//!
//! Capture a trace in memory and read it back line by line:
//!
//! ```
//! use mobic_sim::SimTime;
//! use mobic_trace::{JsonlSink, TraceEvent, TraceSink};
//!
//! let mut sink = JsonlSink::new(Vec::new());
//! sink.record(SimTime::from_secs(1), &TraceEvent::HelloTx { node: 3, seq: 0 });
//! sink.record(
//!     SimTime::from_secs(1),
//!     &TraceEvent::HelloRx { tx: 3, rx: 7, rx_power_dbm: -82.5 },
//! );
//! let bytes = sink.finish().expect("in-memory writes cannot fail");
//! let text = String::from_utf8(bytes).unwrap();
//! assert_eq!(text.lines().count(), 2);
//! assert!(text.lines().next().unwrap().contains("\"kind\":\"hello_tx\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod event;
mod manifest;
mod profile;
mod sink;

pub use artifact::write_atomic;
pub use event::{TraceEvent, ViolationKind};
pub use manifest::{
    config_hash, fnv1a64, manifest_path_for, write_manifests, ManifestCounters, RunManifest,
    MANIFEST_SCHEMA,
};
pub use profile::{PhaseClock, PhaseTimings, Stopwatch};
pub use sink::{JsonlSink, NullSink, TraceCursor, TraceSink};
