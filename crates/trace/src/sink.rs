//! Trace sinks: where emitted events go.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::TraceEvent;

/// A resume position inside a JSONL trace: how many lines (and the
/// exact byte offset) the sink had durably recorded when a checkpoint
/// was taken. Stored in snapshots so a resumed run can truncate the
/// partially-written tail and continue appending — producing a trace
/// byte-identical to an uninterrupted run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCursor {
    /// Lines recorded so far.
    pub lines: u64,
    /// Bytes written so far (every line plus its trailing newline).
    pub bytes: u64,
}

/// A destination for structured simulation events.
///
/// The simulation loop holds a `&mut dyn TraceSink` and consults
/// [`enabled`](Self::enabled) **once per run**: when it returns
/// `false` the loop skips event construction entirely, so a disabled
/// sink costs nothing on the hot path. Implementations must therefore
/// keep `enabled` constant for the lifetime of the sink.
pub trait TraceSink {
    /// Whether this sink wants events at all. Defaults to `true`;
    /// [`NullSink`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event stamped with the simulation time it
    /// describes. Must be infallible on the hot path — sinks that can
    /// fail (I/O) latch their first error and surface it when
    /// finished.
    fn record(&mut self, at: SimTime, event: &TraceEvent);

    /// Flushes any buffering so everything recorded so far is durable.
    /// Called right before a checkpoint captures [`cursor`](Self::cursor);
    /// the default is a no-op for sinks with nothing to flush. I/O
    /// errors are latched like [`record`](Self::record) errors.
    fn sync(&mut self) {}

    /// The sink's resume position, if it has one. `None` (the default)
    /// means the sink cannot be resumed byte-exactly — checkpointing a
    /// traced run requires a `Some` cursor.
    fn cursor(&self) -> Option<TraceCursor> {
        None
    }
}

/// The zero-cost disabled sink: reports `enabled() == false` and
/// discards anything recorded anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at: SimTime, _event: &TraceEvent) {}
}

/// One trace line as serialized: the timestamp in integer
/// microseconds, then the flattened event with its `kind` tag.
#[derive(Serialize)]
struct Line<'a> {
    t_us: u64,
    #[serde(flatten)]
    event: &'a TraceEvent,
}

/// A sink that appends one compact JSON object per event to any
/// [`Write`] target — the on-disk trace format (`*.jsonl`).
///
/// Lines are appended in processing order; every field is a pure
/// function of `(config, seed)`, so identical runs produce
/// byte-identical files (asserted by the `trace_determinism` suite).
///
/// I/O errors cannot interrupt the simulation: the first error is
/// latched, subsequent records become no-ops, and the error surfaces
/// from [`finish`](Self::finish).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    bytes: u64,
    /// Per-line serialization buffer, reused across records so each
    /// event costs one `write_all` and zero steady-state allocations.
    buf: Vec<u8>,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers with raw `File`s should wrap them in a
    /// [`BufWriter`] (or use [`JsonlSink::create`]) — the sink writes
    /// one small chunk per event.
    #[must_use]
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            bytes: 0,
            buf: Vec::new(),
            error: None,
        }
    }

    /// Number of lines successfully recorded so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Bytes successfully recorded so far (including newlines).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Surfaces the first I/O error encountered while recording, or
    /// the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`, with parent
    /// directories, buffered for per-event appends.
    ///
    /// # Errors
    ///
    /// Returns directory-creation and file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Reopens an existing trace file for appending after a crash:
    /// truncates it to `cursor.bytes` (discarding any partially
    /// written tail past the checkpoint) and resumes the line/byte
    /// counters, so the continued trace is byte-identical to one from
    /// an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns open/metadata/truncate errors, and `InvalidData` if the
    /// file is already shorter than the cursor claims (the trace and
    /// the snapshot disagree — resuming would corrupt the stream).
    pub fn resume(path: impl AsRef<Path>, cursor: TraceCursor) -> io::Result<Self> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len < cursor.bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace file {} is shorter ({len} B) than its checkpoint cursor ({} B)",
                    path.as_ref().display(),
                    cursor.bytes
                ),
            ));
        }
        file.set_len(cursor.bytes)?;
        file.seek(SeekFrom::End(0))?;
        let mut sink = JsonlSink::new(BufWriter::new(file));
        sink.lines = cursor.lines;
        sink.bytes = cursor.bytes;
        Ok(sink)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = Line {
            t_us: at.as_micros(),
            event,
        };
        self.buf.clear();
        let result = serde_json::to_writer(&mut self.buf, &line)
            .map_err(io::Error::from)
            .and_then(|()| {
                self.buf.push(b'\n');
                self.out.write_all(&self.buf)
            });
        match result {
            Ok(()) => {
                self.lines += 1;
                self.bytes += self.buf.len() as u64;
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn sync(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.flush() {
            self.error = Some(e);
        }
    }

    fn cursor(&self) -> Option<TraceCursor> {
        Some(TraceCursor {
            lines: self.lines,
            bytes: self.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(SimTime::ZERO, &TraceEvent::HelloTx { node: 0, seq: 0 });
    }

    #[test]
    fn jsonl_lines_carry_timestamp_then_kind() {
        let mut sink = JsonlSink::new(Vec::new());
        assert!(sink.enabled());
        sink.record(
            SimTime::from_secs(2),
            &TraceEvent::HelloRx {
                tx: 1,
                rx: 2,
                rx_power_dbm: -80.0,
            },
        );
        assert_eq!(sink.lines(), 1);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert_eq!(
            text,
            "{\"t_us\":2000000,\"kind\":\"hello_rx\",\"tx\":1,\"rx\":2,\"rx_power_dbm\":-80.0}\n"
        );
    }

    #[test]
    fn identical_event_streams_serialize_identically() {
        let run = || {
            let mut sink = JsonlSink::new(Vec::new());
            for i in 0..10u32 {
                sink.record(
                    SimTime::from_micros(u64::from(i) * 7),
                    &TraceEvent::HelloTx {
                        node: i,
                        seq: u64::from(i),
                    },
                );
            }
            sink.finish().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cursor_tracks_lines_and_exact_bytes() {
        let mut sink = JsonlSink::new(Vec::new());
        assert_eq!(sink.cursor(), Some(TraceCursor::default()));
        for i in 0..5u32 {
            sink.record(
                SimTime::from_micros(u64::from(i)),
                &TraceEvent::HelloTx {
                    node: i,
                    seq: u64::from(i),
                },
            );
        }
        let cursor = sink.cursor().unwrap();
        assert_eq!(cursor.lines, 5);
        assert_eq!(sink.bytes(), cursor.bytes);
        let bytes = sink.finish().unwrap();
        assert_eq!(bytes.len() as u64, cursor.bytes);
        // A mid-stream cursor points at a line boundary.
        assert_eq!(bytes[cursor.bytes as usize - 1], b'\n');
    }

    #[test]
    fn resume_truncates_tail_and_continues_byte_identically() {
        let dir = std::env::temp_dir().join("mobic-trace-resume-test");
        let path = dir.join("t.jsonl");
        let ev = |i: u32| TraceEvent::HelloTx {
            node: i,
            seq: u64::from(i),
        };
        // Uninterrupted reference run: 6 events.
        let mut full = JsonlSink::create(&path).unwrap();
        for i in 0..6 {
            full.record(SimTime::from_micros(u64::from(i)), &ev(i));
        }
        full.finish().unwrap();
        let reference = std::fs::read(&path).unwrap();

        // Interrupted run: checkpoint after 3 events, then write junk
        // (a torn line past the checkpoint) before "crashing".
        let mut partial = JsonlSink::create(&path).unwrap();
        for i in 0..3 {
            partial.record(SimTime::from_micros(u64::from(i)), &ev(i));
        }
        partial.sync();
        let cursor = partial.cursor().unwrap();
        let mut file = partial.finish().unwrap().into_inner().unwrap();
        file.write_all(b"{\"t_us\":9999,\"kind\":\"hel").unwrap();
        drop(file);

        // Resume from the cursor and replay the remaining events.
        let mut resumed = JsonlSink::resume(&path, cursor).unwrap();
        assert_eq!(resumed.lines(), 3);
        assert_eq!(resumed.bytes(), cursor.bytes);
        for i in 3..6 {
            resumed.record(SimTime::from_micros(u64::from(i)), &ev(i));
        }
        resumed.finish().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), reference);

        // A trace shorter than its cursor is refused.
        std::fs::write(&path, b"x").unwrap();
        assert!(JsonlSink::resume(&path, cursor).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_writes_a_real_file() {
        let dir = std::env::temp_dir().join("mobic-trace-sink-test");
        let path = dir.join("t.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(SimTime::ZERO, &TraceEvent::IndexRefresh { nodes: 5 });
        sink.finish().unwrap().into_inner().unwrap().sync_all().ok();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("index_refresh"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
