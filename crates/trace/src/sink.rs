//! Trace sinks: where emitted events go.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use mobic_sim::SimTime;
use serde::Serialize;

use crate::TraceEvent;

/// A destination for structured simulation events.
///
/// The simulation loop holds a `&mut dyn TraceSink` and consults
/// [`enabled`](Self::enabled) **once per run**: when it returns
/// `false` the loop skips event construction entirely, so a disabled
/// sink costs nothing on the hot path. Implementations must therefore
/// keep `enabled` constant for the lifetime of the sink.
pub trait TraceSink {
    /// Whether this sink wants events at all. Defaults to `true`;
    /// [`NullSink`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event stamped with the simulation time it
    /// describes. Must be infallible on the hot path — sinks that can
    /// fail (I/O) latch their first error and surface it when
    /// finished.
    fn record(&mut self, at: SimTime, event: &TraceEvent);
}

/// The zero-cost disabled sink: reports `enabled() == false` and
/// discards anything recorded anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at: SimTime, _event: &TraceEvent) {}
}

/// One trace line as serialized: the timestamp in integer
/// microseconds, then the flattened event with its `kind` tag.
#[derive(Serialize)]
struct Line<'a> {
    t_us: u64,
    #[serde(flatten)]
    event: &'a TraceEvent,
}

/// A sink that appends one compact JSON object per event to any
/// [`Write`] target — the on-disk trace format (`*.jsonl`).
///
/// Lines are appended in processing order; every field is a pure
/// function of `(config, seed)`, so identical runs produce
/// byte-identical files (asserted by the `trace_determinism` suite).
///
/// I/O errors cannot interrupt the simulation: the first error is
/// latched, subsequent records become no-ops, and the error surfaces
/// from [`finish`](Self::finish).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers with raw `File`s should wrap them in a
    /// [`BufWriter`] (or use [`JsonlSink::create`]) — the sink writes
    /// one small chunk per event.
    #[must_use]
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Number of lines successfully recorded so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Surfaces the first I/O error encountered while recording, or
    /// the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`, with parent
    /// directories, buffered for per-event appends.
    ///
    /// # Errors
    ///
    /// Returns directory-creation and file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = Line {
            t_us: at.as_micros(),
            event,
        };
        let result = serde_json::to_writer(&mut self.out, &line)
            .map_err(io::Error::from)
            .and_then(|()| self.out.write_all(b"\n"));
        match result {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(SimTime::ZERO, &TraceEvent::HelloTx { node: 0, seq: 0 });
    }

    #[test]
    fn jsonl_lines_carry_timestamp_then_kind() {
        let mut sink = JsonlSink::new(Vec::new());
        assert!(sink.enabled());
        sink.record(
            SimTime::from_secs(2),
            &TraceEvent::HelloRx {
                tx: 1,
                rx: 2,
                rx_power_dbm: -80.0,
            },
        );
        assert_eq!(sink.lines(), 1);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert_eq!(
            text,
            "{\"t_us\":2000000,\"kind\":\"hello_rx\",\"tx\":1,\"rx\":2,\"rx_power_dbm\":-80.0}\n"
        );
    }

    #[test]
    fn identical_event_streams_serialize_identically() {
        let run = || {
            let mut sink = JsonlSink::new(Vec::new());
            for i in 0..10u32 {
                sink.record(
                    SimTime::from_micros(u64::from(i) * 7),
                    &TraceEvent::HelloTx {
                        node: i,
                        seq: u64::from(i),
                    },
                );
            }
            sink.finish().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn create_writes_a_real_file() {
        let dir = std::env::temp_dir().join("mobic-trace-sink-test");
        let path = dir.join("t.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(SimTime::ZERO, &TraceEvent::IndexRefresh { nodes: 5 });
        sink.finish().unwrap().into_inner().unwrap().sync_all().ok();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("index_refresh"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
