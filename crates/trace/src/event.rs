//! The typed vocabulary of traceable simulation events.

use serde::{Deserialize, Serialize};

/// One structured event inside a simulation run.
///
/// Node identities are raw dense indices (`NodeId::value`) so the
/// trace format stays self-contained and stable. Serialized with an
/// adjacent `kind` tag in `snake_case`, e.g.
/// `{"kind":"hello_rx","tx":3,"rx":7,"rx_power_dbm":-82.5}`; the
/// [`JsonlSink`](crate::JsonlSink) prefixes each record with the
/// simulation timestamp.
///
/// Semantics mirror the `RunResult` counters exactly:
///
/// * one [`HelloTx`](Self::HelloTx) per `hello_broadcasts`,
/// * one [`HelloRx`](Self::HelloRx) per committed delivery (with the
///   vulnerable-window MAC model, a reception is only "received" once
///   its window closes without an overlap),
/// * one [`MacCollision`](Self::MacCollision) per destroyed reception
///   (`mac_collisions`),
/// * [`HeadElected`](Self::HeadElected) + [`HeadResigned`](Self::HeadResigned)
///   + [`ClusterMerge`](Self::ClusterMerge) together count every
///   clusterhead change (`clusterhead_changes_total`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TraceEvent {
    /// A node broadcast its periodic hello.
    HelloTx {
        /// The broadcasting node.
        node: u32,
        /// The hello's per-sender sequence number.
        seq: u64,
    },
    /// A hello was successfully received (committed to the receiver's
    /// neighbor table).
    HelloRx {
        /// The transmitting node.
        tx: u32,
        /// The receiving node.
        rx: u32,
        /// Measured received power in dBm (the `RxPr` the MOBIC
        /// metric is built from).
        rx_power_dbm: f64,
    },
    /// A hello reached a receiver in radio range but was dropped by
    /// the packet-loss model.
    HelloLost {
        /// The transmitting node.
        tx: u32,
        /// The receiver that lost the packet.
        rx: u32,
    },
    /// A reception was destroyed by the vulnerable-window MAC
    /// collision model (overlaps destroy *both* packets, so these
    /// come in groups of at least two per overlap).
    MacCollision {
        /// The originator of the destroyed packet.
        tx: u32,
        /// The receiver at which the overlap happened.
        rx: u32,
    },
    /// A node became a clusterhead.
    HeadElected {
        /// The newly elected clusterhead.
        node: u32,
    },
    /// A clusterhead gave up its role without joining another cluster
    /// (it fell back to undecided).
    HeadResigned {
        /// The resigning clusterhead.
        node: u32,
    },
    /// A clusterhead stepped down and joined another head's cluster —
    /// the two clusters merged (the LCC contention outcome).
    ClusterMerge {
        /// The head that stepped down.
        node: u32,
        /// The surviving clusterhead it now belongs to.
        into: u32,
    },
    /// The spatial-index fast path refreshed every approximate
    /// position (never emitted on the brute-force path).
    IndexRefresh {
        /// Number of index entries refreshed (the population size).
        nodes: u32,
    },
    /// A node left the network: a fail-stop crash from the fault plan
    /// (dead nodes neither transmit nor receive nor hold elections;
    /// neighbors expire them naturally).
    NodeDown {
        /// The crashed node.
        node: u32,
    },
    /// A node (re)joined the network: a crash recovery (neighbor table
    /// and role state wiped) or a scheduled late join.
    NodeUp {
        /// The node that came up.
        node: u32,
    },
    /// One side of a node's interface failed: `mute` suppresses its
    /// transmissions, otherwise its receptions are dropped (deaf).
    NodeImpaired {
        /// The impaired node.
        node: u32,
        /// `true` = mute spell (tx suppressed), `false` = deaf spell
        /// (rx dropped).
        mute: bool,
    },
    /// An interface impairment ended.
    NodeRestored {
        /// The restored node.
        node: u32,
        /// Which impairment ended (see [`NodeImpaired`](Self::NodeImpaired)).
        mute: bool,
    },
    /// The periodic in-run audit (`audit: warn`) found a Theorem-1
    /// violation in the current cluster structure.
    InvariantViolation {
        /// Which invariant was violated.
        violation: ViolationKind,
        /// The primary offending node.
        node: u32,
        /// The counterpart node, when the invariant relates two nodes
        /// (the other head, or the claimed clusterhead).
        other: Option<u32>,
    },
}

/// The Theorem-1 invariant classes the in-run audit can report,
/// mirroring `mobic-core::invariants::Violation` in a trace-stable
/// form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ViolationKind {
    /// Two clusterheads are within direct radio range.
    AdjacentHeads,
    /// A member is affiliated with a clusterhead it cannot hear.
    MemberUnreachable,
    /// A member points at a node that is not a clusterhead.
    DanglingAffiliation,
    /// A node is still undecided.
    Undecided,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_with_snake_case_kind_tag() {
        let ev = TraceEvent::HelloTx { node: 3, seq: 9 };
        let json = serde_json::to_string(&ev).unwrap();
        assert_eq!(json, r#"{"kind":"hello_tx","node":3,"seq":9}"#);
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn every_variant_round_trips() {
        let events = [
            TraceEvent::HelloTx { node: 1, seq: 2 },
            TraceEvent::HelloRx {
                tx: 1,
                rx: 2,
                rx_power_dbm: -80.0,
            },
            TraceEvent::HelloLost { tx: 1, rx: 2 },
            TraceEvent::MacCollision { tx: 1, rx: 2 },
            TraceEvent::HeadElected { node: 4 },
            TraceEvent::HeadResigned { node: 4 },
            TraceEvent::ClusterMerge { node: 4, into: 5 },
            TraceEvent::IndexRefresh { nodes: 50 },
            TraceEvent::NodeDown { node: 6 },
            TraceEvent::NodeUp { node: 6 },
            TraceEvent::NodeImpaired {
                node: 7,
                mute: true,
            },
            TraceEvent::NodeRestored {
                node: 7,
                mute: false,
            },
            TraceEvent::InvariantViolation {
                violation: ViolationKind::AdjacentHeads,
                node: 1,
                other: Some(2),
            },
            TraceEvent::InvariantViolation {
                violation: ViolationKind::Undecided,
                node: 9,
                other: None,
            },
        ];
        for ev in events {
            let json = serde_json::to_string(&ev).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev, "{json}");
        }
    }

    #[test]
    fn fault_events_use_snake_case_kinds() {
        let json = serde_json::to_string(&TraceEvent::NodeDown { node: 3 }).unwrap();
        assert_eq!(json, r#"{"kind":"node_down","node":3}"#);
        let json = serde_json::to_string(&TraceEvent::InvariantViolation {
            violation: ViolationKind::MemberUnreachable,
            node: 3,
            other: Some(1),
        })
        .unwrap();
        assert_eq!(
            json,
            r#"{"kind":"invariant_violation","violation":"member_unreachable","node":3,"other":1}"#
        );
    }
}
