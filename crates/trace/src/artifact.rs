//! Crash-safe artifact persistence.
//!
//! Every results artifact in this workspace (sweep tables, manifests,
//! bench JSON, per-cell sweep outcomes) is published through
//! [`write_atomic`]: the bytes land in a temporary file in the *same
//! directory* as the destination and are then atomically renamed over
//! it. A process killed mid-write can leave a stray `*.tmp` file
//! behind, but never a truncated `results/*.json` — which is what
//! makes interrupted sweeps resumable: a cell file that exists is a
//! cell file that is complete.

use std::io;
use std::path::{Path, PathBuf};

/// Writes `contents` to `path` atomically (temp file + rename),
/// creating parent directories as needed.
///
/// The temporary file is created in the destination's directory so the
/// final `rename` never crosses a filesystem boundary (a cross-device
/// rename is a copy, which is not atomic). The temp name embeds the
/// process id, so concurrent writers in different processes cannot
/// clobber each other's scratch file.
///
/// # Errors
///
/// Returns any I/O error from directory creation, the temp-file write,
/// or the rename. On error the destination is untouched (the stale
/// temp file, if any, is removed on a best-effort basis).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = temp_sibling(path);
    std::fs::write(&tmp, contents.as_ref())?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// The scratch path used by [`write_atomic`]: `.{name}.{pid}.tmp` in
/// the destination's directory.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map_or_else(|| "artifact".into(), |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!(".{name}.{}.tmp", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mobic-trace-atomic-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn creates_parent_directories() {
        let dir = scratch_dir("parents");
        let path = dir.join("a/b/c.json");
        write_atomic(&path, b"x").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = scratch_dir("clean");
        let path = dir.join("out.json");
        write_atomic(&path, b"payload").unwrap();
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(strays.is_empty(), "stray temp files: {strays:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_sibling_stays_in_same_directory() {
        let t = temp_sibling(Path::new("results/fig3.json"));
        assert_eq!(t.parent(), Some(Path::new("results")));
        let name = t.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".fig3.json."), "{name}");
        assert!(name.ends_with(".tmp"), "{name}");
    }
}
