//! A 2-D vector / point type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 2-D vector, also used to represent points (node positions) on the
/// simulation field. Units are meters unless stated otherwise.
///
/// `Vec2` is a plain value type: `Copy`, component-public, with the usual
/// arithmetic operators. It intentionally does not implement `Eq`/`Hash`
/// because it wraps floating point values; use [`Vec2::approx_eq`] for
/// tolerant comparison.
///
/// # Examples
///
/// ```
/// use mobic_geom::Vec2;
///
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// assert_eq!(v + Vec2::new(1.0, 1.0), Vec2::new(4.0, 5.0));
/// assert_eq!(v * 2.0, Vec2::new(6.0, 8.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component (meters).
    pub x: f64,
    /// Vertical component (meters).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector / origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a unit vector pointing at `angle` radians from the
    /// positive x-axis, scaled by `radius`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mobic_geom::Vec2;
    /// let v = Vec2::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(v.approx_eq(Vec2::new(0.0, 2.0)));
    /// ```
    #[must_use]
    pub fn from_polar(radius: f64, angle: f64) -> Self {
        Vec2::new(radius * angle.cos(), radius * angle.sin())
    }

    /// Dot product with `other`.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z-component of the 3-D cross product).
    /// Positive when `other` is counter-clockwise from `self`.
    #[must_use]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length of the vector.
    #[must_use]
    pub fn length(self) -> f64 {
        self.length_squared().sqrt()
    }

    /// Squared length; cheaper than [`Vec2::length`] when only
    /// comparisons are needed.
    #[must_use]
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance from `self` to `other` (interpreting both as
    /// points).
    #[must_use]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Squared distance from `self` to `other`.
    #[must_use]
    pub fn distance_squared(self, other: Vec2) -> f64 {
        (self - other).length_squared()
    }

    /// Returns the vector scaled to unit length, or `None` if its length
    /// is (near) zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mobic_geom::Vec2;
    /// assert_eq!(Vec2::new(0.0, 3.0).normalized(), Some(Vec2::new(0.0, 1.0)));
    /// assert_eq!(Vec2::ZERO.normalized(), None);
    /// ```
    #[must_use]
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len <= crate::EPSILON {
            None
        } else {
            Some(self / len)
        }
    }

    /// Linear interpolation: returns `self` at `t = 0` and `other` at
    /// `t = 1`. `t` outside `[0, 1]` extrapolates.
    #[must_use]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Angle of the vector in radians, in `(-π, π]`, measured from the
    /// positive x-axis.
    #[must_use]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// The vector rotated counter-clockwise by `angle` radians.
    #[must_use]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// The vector rotated 90° counter-clockwise.
    #[must_use]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` if both components are finite (not NaN/∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Tolerant equality using the crate [`EPSILON`](crate::EPSILON) per
    /// component.
    #[must_use]
    pub fn approx_eq(self, other: Vec2) -> bool {
        crate::approx_eq(self.x, other.x) && crate::approx_eq(self.y, other.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec2 {
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl DivAssign<f64> for Vec2 {
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn construction_and_accessors() {
        let v = Vec2::new(1.5, -2.5);
        assert_eq!(v.x, 1.5);
        assert_eq!(v.y, -2.5);
        assert_eq!(Vec2::default(), Vec2::ZERO);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec2::new(1.0, 1.0);
        v += Vec2::new(1.0, 0.0);
        assert_eq!(v, Vec2::new(2.0, 1.0));
        v -= Vec2::new(0.0, 1.0);
        assert_eq!(v, Vec2::new(2.0, 0.0));
        v *= 3.0;
        assert_eq!(v, Vec2::new(6.0, 0.0));
        v /= 2.0;
        assert_eq!(v, Vec2::new(3.0, 0.0));
    }

    #[test]
    fn dot_cross_length() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(-4.0, 3.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 25.0);
        assert_eq!(a.length(), 5.0);
        assert_eq!(a.length_squared(), 25.0);
    }

    #[test]
    fn distances() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(0.0, -7.0);
        assert_eq!(v.normalized(), Some(Vec2::new(0.0, -1.0)));
        assert_eq!(Vec2::ZERO.normalized(), None);
        assert_eq!(Vec2::new(1e-12, 0.0).normalized(), None);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -5.0));
        // Extrapolation.
        assert_eq!(a.lerp(b, 2.0), Vec2::new(20.0, -20.0));
    }

    #[test]
    fn polar_and_angle_roundtrip() {
        let v = Vec2::from_polar(2.0, PI / 4.0);
        assert!(crate::approx_eq(v.angle(), PI / 4.0));
        assert!(crate::approx_eq(v.length(), 2.0));
    }

    #[test]
    fn rotation() {
        let v = Vec2::new(1.0, 0.0);
        assert!(v.rotated(FRAC_PI_2).approx_eq(Vec2::new(0.0, 1.0)));
        assert!(v.rotated(PI).approx_eq(Vec2::new(-1.0, 0.0)));
        assert!(v.perp().approx_eq(Vec2::new(0.0, 1.0)));
    }

    #[test]
    fn min_max_components() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, 3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec2 = [
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 3.0),
            Vec2::new(-1.0, 1.0),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, Vec2::new(2.0, 4.0));
    }

    #[test]
    fn tuple_conversions() {
        let v: Vec2 = (4.0, 5.0).into();
        assert_eq!(v, Vec2::new(4.0, 5.0));
        let t: (f64, f64) = v.into();
        assert_eq!(t, (4.0, 5.0));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Vec2::new(1.0, 2.5).to_string(), "(1.000, 2.500)");
    }
}
