//! 2-D geometry primitives and spatial indexing for the MOBIC MANET
//! simulator.
//!
//! Everything in the simulator lives on a flat 2-D plane measured in
//! meters, matching the ns-2 scenarios of the paper (670 m × 670 m and
//! 1000 m × 1000 m fields). This crate provides:
//!
//! * [`Vec2`] — a plain 2-D vector/point with the usual arithmetic;
//! * [`Rect`] — an axis-aligned rectangle used as the simulation field;
//! * [`GridIndex`] — a uniform-grid spatial index answering "which nodes
//!   are within radius `r` of point `p`?" in close to `O(k)` time, used
//!   by the broadcast delivery engine;
//! * [`segment`] — closest-approach helpers for piecewise-linear motion.
//!
//! # Examples
//!
//! ```
//! use mobic_geom::{Vec2, Rect};
//!
//! let field = Rect::new(670.0, 670.0);
//! let a = Vec2::new(10.0, 20.0);
//! let b = Vec2::new(13.0, 24.0);
//! assert_eq!(a.distance(b), 5.0);
//! assert!(field.contains(a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod rect;
pub mod segment;
mod vec2;

pub use grid::GridIndex;
pub use rect::Rect;
pub use vec2::Vec2;

/// Numerical tolerance used by the geometric predicates in this crate.
///
/// Distances in the simulator are on the order of 1–1000 m, so a
/// tolerance of 1e-9 m (one nanometer) is far below any physically
/// meaningful scale while staying well above `f64` rounding noise.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if `a` and `b` are within [`EPSILON`] of each other.
///
/// # Examples
///
/// ```
/// assert!(mobic_geom::approx_eq(0.1 + 0.2, 0.3));
/// assert!(!mobic_geom::approx_eq(1.0, 1.1));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(1.0, 1.0 - 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }
}
