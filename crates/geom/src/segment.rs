//! Closest-approach helpers for piecewise-linear motion.
//!
//! Mobility models in this workspace describe node motion as
//! piecewise-linear legs. Several analyses (link-lifetime prediction,
//! routing-route validity, test oracles) need to know *when* two nodes
//! moving on straight legs come within (or leave) a given range. This
//! module provides the exact closed-form solutions.

use crate::Vec2;

/// Relative motion of two points each moving with constant velocity:
/// the distance between them as a function of time is
/// `|Δp + Δv·t|`, a square root of a quadratic in `t`.
///
/// `LinearApproach` precomputes that quadratic so callers can query
/// closest approach and range-crossing times cheaply.
///
/// # Examples
///
/// ```
/// use mobic_geom::{segment::LinearApproach, Vec2};
///
/// // Two nodes approaching head-on at 1 m/s each, starting 10 m apart.
/// let la = LinearApproach::new(
///     Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0),
///     Vec2::new(10.0, 0.0), Vec2::new(-1.0, 0.0),
/// );
/// assert_eq!(la.distance_at(0.0), 10.0);
/// let (t_min, d_min) = la.closest_approach();
/// assert_eq!(t_min, 5.0);
/// assert_eq!(d_min, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearApproach {
    /// Relative position at `t = 0`.
    dp: Vec2,
    /// Relative velocity.
    dv: Vec2,
}

impl LinearApproach {
    /// Builds the relative-motion model for point `a` at `pa` moving
    /// with velocity `va` and point `b` at `pb` moving with velocity
    /// `vb` (positions in meters, velocities in m/s, time in seconds).
    #[must_use]
    pub fn new(pa: Vec2, va: Vec2, pb: Vec2, vb: Vec2) -> Self {
        LinearApproach {
            dp: pb - pa,
            dv: vb - va,
        }
    }

    /// Distance between the two points at time `t` (seconds, may be
    /// negative to look into the past of the linear extrapolation).
    #[must_use]
    pub fn distance_at(&self, t: f64) -> f64 {
        (self.dp + self.dv * t).length()
    }

    /// Time of closest approach (clamped to `t >= 0`) and the distance
    /// at that time. If the points are mutually stationary the closest
    /// approach is at `t = 0`.
    #[must_use]
    pub fn closest_approach(&self) -> (f64, f64) {
        let a = self.dv.length_squared();
        if a <= 0.0 {
            return (0.0, self.dp.length());
        }
        let t = (-self.dp.dot(self.dv) / a).max(0.0);
        (t, self.distance_at(t))
    }

    /// The interval of times `t >= 0` during which the two points are
    /// within `range` of each other, or `None` if they never are.
    ///
    /// The squared distance is `a t² + b t + c` with
    /// `a = |Δv|²`, `b = 2 Δp·Δv`, `c = |Δp|²`; solving
    /// `a t² + b t + c = range²` gives the entry/exit times.
    ///
    /// # Panics
    ///
    /// Panics if `range` is negative or non-finite.
    #[must_use]
    pub fn within_range_interval(&self, range: f64) -> Option<(f64, f64)> {
        assert!(
            range >= 0.0 && range.is_finite(),
            "range must be finite and non-negative, got {range}"
        );
        let a = self.dv.length_squared();
        let b = 2.0 * self.dp.dot(self.dv);
        let c = self.dp.length_squared() - range * range;
        if a <= 0.0 {
            // Relative position is constant.
            return if c <= 0.0 {
                Some((0.0, f64::INFINITY))
            } else {
                None
            };
        }
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t0 = (-b - sq) / (2.0 * a);
        let t1 = (-b + sq) / (2.0 * a);
        if t1 < 0.0 {
            return None;
        }
        Some((t0.max(0.0), t1))
    }

    /// First time `t >= 0` at which the pair crosses from inside
    /// `range` to outside (the "link break" time), or `None` if the
    /// pair is outside at `t = 0` or never leaves range.
    #[must_use]
    pub fn link_break_time(&self, range: f64) -> Option<f64> {
        let (t0, t1) = self.within_range_interval(range)?;
        if t0 > 0.0 {
            return None; // not in range now
        }
        if t1.is_finite() {
            Some(t1)
        } else {
            None
        }
    }
}

/// Point on the segment `a..b` closest to `p`.
///
/// # Examples
///
/// ```
/// use mobic_geom::{segment::closest_point_on_segment, Vec2};
/// let a = Vec2::new(0.0, 0.0);
/// let b = Vec2::new(10.0, 0.0);
/// assert_eq!(closest_point_on_segment(Vec2::new(3.0, 4.0), a, b), Vec2::new(3.0, 0.0));
/// assert_eq!(closest_point_on_segment(Vec2::new(-5.0, 1.0), a, b), a);
/// ```
#[must_use]
pub fn closest_point_on_segment(p: Vec2, a: Vec2, b: Vec2) -> Vec2 {
    let ab = b - a;
    let len2 = ab.length_squared();
    if len2 <= 0.0 {
        return a;
    }
    let t = ((p - a).dot(ab) / len2).clamp(0.0, 1.0);
    a + ab * t
}

/// Distance from `p` to the segment `a..b`.
#[must_use]
pub fn distance_to_segment(p: Vec2, a: Vec2, b: Vec2) -> f64 {
    p.distance(closest_point_on_segment(p, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approach(pa: (f64, f64), va: (f64, f64), pb: (f64, f64), vb: (f64, f64)) -> LinearApproach {
        LinearApproach::new(pa.into(), va.into(), pb.into(), vb.into())
    }

    #[test]
    fn stationary_pair() {
        let la = approach((0.0, 0.0), (0.0, 0.0), (3.0, 4.0), (0.0, 0.0));
        assert_eq!(la.distance_at(0.0), 5.0);
        assert_eq!(la.distance_at(100.0), 5.0);
        assert_eq!(la.closest_approach(), (0.0, 5.0));
        assert_eq!(la.within_range_interval(5.0), Some((0.0, f64::INFINITY)));
        assert_eq!(la.within_range_interval(4.9), None);
        assert_eq!(la.link_break_time(10.0), None);
    }

    #[test]
    fn head_on_collision_course() {
        let la = approach((0.0, 0.0), (1.0, 0.0), (10.0, 0.0), (-1.0, 0.0));
        let (t, d) = la.closest_approach();
        assert_eq!(t, 5.0);
        assert_eq!(d, 0.0);
        // In 2 m range from t=4 to t=6.
        let (t0, t1) = la.within_range_interval(2.0).unwrap();
        assert!((t0 - 4.0).abs() < 1e-9);
        assert!((t1 - 6.0).abs() < 1e-9);
        // Not in range now => no break time.
        assert_eq!(la.link_break_time(2.0), None);
    }

    #[test]
    fn receding_pair_breaks_link() {
        let la = approach((0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (1.0, 0.0));
        // In range 5 at t=0, leaves at t=4 (distance 1 + t).
        let brk = la.link_break_time(5.0).unwrap();
        assert!((brk - 4.0).abs() < 1e-9, "{brk}");
        assert_eq!(la.distance_at(brk), 5.0);
    }

    #[test]
    fn parallel_movers_never_change_distance() {
        let la = approach((0.0, 0.0), (3.0, 3.0), (0.0, 7.0), (3.0, 3.0));
        assert_eq!(la.closest_approach(), (0.0, 7.0));
        assert_eq!(la.within_range_interval(6.0), None);
    }

    #[test]
    fn passing_nodes_enter_and_leave() {
        // b passes a at lateral offset 3, speed 1.
        let la = approach((0.0, 0.0), (0.0, 0.0), (-10.0, 3.0), (1.0, 0.0));
        let (t0, t1) = la.within_range_interval(5.0).unwrap();
        // |(-10+t, 3)| = 5 => (t-10)^2 = 16 => t = 6 or 14.
        assert!((t0 - 6.0).abs() < 1e-9, "{t0}");
        assert!((t1 - 14.0).abs() < 1e-9, "{t1}");
        let (tc, dc) = la.closest_approach();
        assert!((tc - 10.0).abs() < 1e-9);
        assert!((dc - 3.0).abs() < 1e-9);
    }

    #[test]
    fn closest_approach_in_past_clamps_to_zero() {
        // Already receding: closest approach was before t=0.
        let la = approach((0.0, 0.0), (0.0, 0.0), (5.0, 0.0), (2.0, 0.0));
        let (t, d) = la.closest_approach();
        assert_eq!(t, 0.0);
        assert_eq!(d, 5.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_range_panics() {
        let la = approach((0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 0.0));
        let _ = la.within_range_interval(-1.0);
    }

    #[test]
    fn segment_projection() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 0.0);
        assert_eq!(
            closest_point_on_segment(Vec2::new(5.0, 5.0), a, b),
            Vec2::new(5.0, 0.0)
        );
        assert_eq!(closest_point_on_segment(Vec2::new(20.0, 1.0), a, b), b);
        assert_eq!(distance_to_segment(Vec2::new(5.0, 5.0), a, b), 5.0);
        // Degenerate segment.
        assert_eq!(closest_point_on_segment(Vec2::new(1.0, 1.0), a, a), a);
    }
}
