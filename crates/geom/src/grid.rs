//! Uniform-grid spatial index.
//!
//! The broadcast delivery engine needs, for every Hello transmission,
//! the set of nodes within the transmitter's radio range. With `N`
//! nodes and a range query per broadcast, a naive scan is `O(N)` per
//! query; for the paper's `N = 50` that would be fine, but the library
//! supports much larger scenarios, so we provide a uniform grid with
//! `O(k)` expected query cost (`k` = matches).

use crate::{Rect, Vec2};

/// A uniform-grid spatial index over a set of identified points.
///
/// Points are identified by dense `usize` ids (`0..n`), matching node
/// indices in the simulator. The index is rebuilt (or updated point by
/// point) as nodes move.
///
/// # Examples
///
/// ```
/// use mobic_geom::{GridIndex, Rect, Vec2};
///
/// let field = Rect::new(100.0, 100.0);
/// let positions = vec![
///     Vec2::new(10.0, 10.0),
///     Vec2::new(12.0, 10.0),
///     Vec2::new(90.0, 90.0),
/// ];
/// let index = GridIndex::build(field, 25.0, &positions);
/// let mut near = index.query_within(Vec2::new(11.0, 10.0), 5.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    field: Rect,
    cell_size: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<usize>>,
    positions: Vec<Vec2>,
}

impl GridIndex {
    /// Builds an index over `positions` with the given cell size.
    ///
    /// A good `cell_size` is the typical query radius (the radio
    /// range): then a query touches at most 9 cells.
    ///
    /// Points outside `field` are clamped into it for bucketing (they
    /// are still stored with their true coordinates and distances are
    /// computed exactly).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    #[must_use]
    pub fn build(field: Rect, cell_size: f64, positions: &[Vec2]) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite, got {cell_size}"
        );
        let cols = ((field.width() / cell_size).ceil() as usize).max(1);
        let rows = ((field.height() / cell_size).ceil() as usize).max(1);
        let mut index = GridIndex {
            field,
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            positions: positions.to_vec(),
        };
        for (id, &p) in positions.iter().enumerate() {
            let c = index.cell_of(p);
            index.cells[c].push(id);
        }
        index
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the index holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position stored for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn position(&self, id: usize) -> Vec2 {
        self.positions[id]
    }

    /// Moves point `id` to a new position, updating its bucket.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn update(&mut self, id: usize, new_pos: Vec2) {
        let old_cell = self.cell_of(self.positions[id]);
        let new_cell = self.cell_of(new_pos);
        self.positions[id] = new_pos;
        if old_cell != new_cell {
            if let Some(slot) = self.cells[old_cell].iter().position(|&x| x == id) {
                self.cells[old_cell].swap_remove(slot);
            }
            self.cells[new_cell].push(id);
        }
    }

    /// Moves every point to its entry in `positions`, updating buckets.
    ///
    /// Equivalent to calling [`update`](Self::update) for each id, but
    /// expresses a whole-population refresh (e.g. a periodic resync of
    /// an incrementally maintained index) in one call.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len()` differs from [`len`](Self::len).
    pub fn update_all(&mut self, positions: &[Vec2]) {
        assert_eq!(
            positions.len(),
            self.positions.len(),
            "update_all must cover every indexed point"
        );
        for (id, &p) in positions.iter().enumerate() {
            self.update(id, p);
        }
    }

    /// Ids of all points within `radius` of `center` (inclusive),
    /// including a point located exactly at `center`.
    #[must_use]
    pub fn query_within(&self, center: Vec2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |id| out.push(id));
        out
    }

    /// Visits the id of every point within `radius` of `center`
    /// (inclusive) without allocating.
    pub fn for_each_within<F: FnMut(usize)>(&self, center: Vec2, radius: f64, mut f: F) {
        let r2 = radius * radius;
        let (c0, r0) = self.cell_coords(Vec2::new(center.x - radius, center.y - radius));
        let (c1, r1) = self.cell_coords(Vec2::new(center.x + radius, center.y + radius));
        for row in r0..=r1 {
            for col in c0..=c1 {
                for &id in &self.cells[row * self.cols + col] {
                    if self.positions[id].distance_squared(center) <= r2 {
                        f(id);
                    }
                }
            }
        }
    }

    /// All unordered pairs `(i, j)` with `i < j` whose distance is at
    /// most `radius` — the link set of a unit-disk graph. Useful for
    /// building topology snapshots.
    #[must_use]
    pub fn links_within(&self, radius: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.positions.len() {
            self.for_each_within(self.positions[i], radius, |j| {
                if j > i {
                    out.push((i, j));
                }
            });
        }
        out
    }

    /// Total number of grid cells (`cols × rows`).
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// The flat index (`row * cols + col`) of the cell owning point
    /// `p`.
    ///
    /// Ownership is a **partition**: every representable point maps to
    /// exactly one cell in `0..n_cells()`. Cells are half-open on
    /// their lower edges — a point exactly on an interior border
    /// belongs to the cell whose origin it touches (truncation toward
    /// zero) — the last column/row additionally own the field's
    /// right/top edge, and points outside the field are clamped onto
    /// it before bucketing. Shard ownership in the scenario runner
    /// leans on this: `cell_index(p) % n_shards` must assign every
    /// node exactly one shard, with no point unowned or doubly owned,
    /// even for positions exactly on a border, a corner, or off the
    /// field entirely.
    #[must_use]
    pub fn cell_index(&self, p: Vec2) -> usize {
        self.cell_of(p)
    }

    fn cell_coords(&self, p: Vec2) -> (usize, usize) {
        let q = self.field.clamp(p) - self.field.min();
        let col = ((q.x / self.cell_size) as usize).min(self.cols - 1);
        let row = ((q.y / self.cell_size) as usize).min(self.rows - 1);
        (col, row)
    }

    fn cell_of(&self, p: Vec2) -> usize {
        let (col, row) = self.cell_coords(p);
        row * self.cols + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_positions() -> Vec<Vec2> {
        vec![
            Vec2::new(5.0, 5.0),   // 0
            Vec2::new(6.0, 5.0),   // 1
            Vec2::new(50.0, 50.0), // 2
            Vec2::new(99.0, 99.0), // 3
            Vec2::new(5.0, 6.0),   // 4
        ]
    }

    #[test]
    fn build_and_query() {
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        let mut near = idx.query_within(Vec2::new(5.0, 5.0), 2.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1, 4]);
    }

    #[test]
    fn query_includes_boundary_distance() {
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        // Node 1 is exactly 1.0 away from (5,5); radius exactly 1.0 includes it.
        let mut near = idx.query_within(Vec2::new(5.0, 5.0), 1.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1, 4]);
    }

    #[test]
    fn query_empty_region() {
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        assert!(idx.query_within(Vec2::new(30.0, 80.0), 5.0).is_empty());
    }

    #[test]
    fn query_spanning_many_cells() {
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        let mut all = idx.query_within(Vec2::new(50.0, 50.0), 200.0);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn update_moves_between_cells() {
        let mut idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        idx.update(3, Vec2::new(5.5, 5.5));
        let mut near = idx.query_within(Vec2::new(5.0, 5.0), 2.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1, 3, 4]);
        assert!(idx.query_within(Vec2::new(99.0, 99.0), 2.0).is_empty());
        assert_eq!(idx.position(3), Vec2::new(5.5, 5.5));
    }

    #[test]
    fn update_within_same_cell() {
        let mut idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        idx.update(0, Vec2::new(5.2, 5.2));
        let near = idx.query_within(Vec2::new(5.2, 5.2), 0.1);
        assert_eq!(near, vec![0]);
    }

    #[test]
    fn update_all_matches_rebuild() {
        let mut idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        let moved: Vec<Vec2> = cluster_positions()
            .iter()
            .map(|p| Vec2::new(99.0 - p.x, 99.0 - p.y))
            .collect();
        idx.update_all(&moved);
        let rebuilt = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &moved);
        for center in &moved {
            let mut a = idx.query_within(*center, 15.0);
            let mut b = rebuilt.query_within(*center, 15.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "every indexed point")]
    fn update_all_length_mismatch_panics() {
        let mut idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &cluster_positions());
        idx.update_all(&[Vec2::ZERO]);
    }

    #[test]
    fn points_outside_field_are_still_found() {
        let positions = vec![Vec2::new(-10.0, -10.0), Vec2::new(150.0, 50.0)];
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &positions);
        let near = idx.query_within(Vec2::new(-9.0, -10.0), 2.0);
        assert_eq!(near, vec![0]);
        let near = idx.query_within(Vec2::new(149.0, 50.0), 2.0);
        assert_eq!(near, vec![1]);
    }

    #[test]
    fn links_within_matches_bruteforce() {
        let positions: Vec<Vec2> = (0..30)
            .map(|i| {
                let t = i as f64;
                Vec2::new((t * 37.0) % 100.0, (t * 61.0) % 100.0)
            })
            .collect();
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 15.0, &positions);
        let mut fast = idx.links_within(20.0);
        fast.sort_unstable();
        let mut slow = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if positions[i].distance(positions[j]) <= 20.0 {
                    slow.push((i, j));
                }
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(Rect::new(10.0, 10.0), 5.0, &[]);
        assert!(idx.is_empty());
        assert!(idx.query_within(Vec2::new(5.0, 5.0), 100.0).is_empty());
        assert!(idx.links_within(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build(Rect::new(10.0, 10.0), 0.0, &[]);
    }

    #[test]
    fn cell_index_partition_on_borders_and_corners() {
        // Regression for shard ownership: positions exactly on a cell
        // border, on the field edge, or outside the field must each
        // resolve to exactly one in-range owning cell.
        let idx = GridIndex::build(Rect::new(100.0, 100.0), 10.0, &[]);
        assert_eq!(idx.n_cells(), 100);
        // Interior borders: half-open below, so the border point
        // belongs to the cell whose origin it touches.
        assert_eq!(idx.cell_index(Vec2::new(10.0, 0.0)), 1);
        assert_eq!(idx.cell_index(Vec2::new(0.0, 10.0)), 10);
        assert_eq!(idx.cell_index(Vec2::new(10.0, 10.0)), 11);
        // Immediately below a border: still the lower cell.
        assert_eq!(idx.cell_index(Vec2::new(10.0 - 1e-9, 10.0 - 1e-9)), 0);
        // All four field corners are owned; the far edges fold into
        // the last column/row instead of indexing out of range.
        assert_eq!(idx.cell_index(Vec2::new(0.0, 0.0)), 0);
        assert_eq!(idx.cell_index(Vec2::new(100.0, 0.0)), 9);
        assert_eq!(idx.cell_index(Vec2::new(0.0, 100.0)), 90);
        assert_eq!(idx.cell_index(Vec2::new(100.0, 100.0)), 99);
        // Off-field positions clamp onto the nearest edge cell.
        assert_eq!(idx.cell_index(Vec2::new(-5.0, -5.0)), 0);
        assert_eq!(idx.cell_index(Vec2::new(1e12, -1.0)), 9);
        assert_eq!(idx.cell_index(Vec2::new(1e12, 1e12)), 99);
    }

    #[test]
    fn cell_index_partition_exhaustive_lattice() {
        // A fine lattice including exact border multiples on a
        // non-square field whose extent is not a multiple of the cell
        // size: every point gets exactly one valid owning cell, and
        // the owner agrees with the bucket build/update path.
        let field = Rect::new(70.0, 30.0);
        let idx = GridIndex::build(field, 7.5, &[]);
        assert_eq!(idx.n_cells(), 10 * 4);
        for i in 0..=140 {
            for j in 0..=60 {
                let p = Vec2::new(f64::from(i) * 0.5, f64::from(j) * 0.5);
                let c = idx.cell_index(p);
                assert!(c < idx.n_cells(), "{p:?} escaped the grid: {c}");
                // Bucketing must use the same owner: a one-point index
                // finds the point when querying its own position.
                let one = GridIndex::build(field, 7.5, &[p]);
                assert_eq!(one.cell_index(p), c);
                assert_eq!(one.query_within(p, 0.0), vec![0]);
            }
        }
    }

    #[test]
    fn degenerate_field_single_cell() {
        let positions = vec![Vec2::ZERO, Vec2::new(0.0, 0.0)];
        let idx = GridIndex::build(Rect::new(0.0, 0.0), 1.0, &positions);
        let mut near = idx.query_within(Vec2::ZERO, 0.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1]);
    }
}
