//! Axis-aligned rectangles (simulation fields).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Vec2;

/// An axis-aligned rectangle, used primarily as the bounding field of a
/// simulation scenario (e.g. the paper's 670 m × 670 m region).
///
/// Invariant: `min.x <= max.x && min.y <= max.y`, enforced at
/// construction.
///
/// # Examples
///
/// ```
/// use mobic_geom::{Rect, Vec2};
///
/// let field = Rect::new(670.0, 670.0);
/// assert_eq!(field.width(), 670.0);
/// assert_eq!(field.area(), 670.0 * 670.0);
/// assert!(field.contains(Vec2::new(0.0, 0.0)));
/// assert!(!field.contains(Vec2::new(-1.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Vec2,
    max: Vec2,
}

impl Rect {
    /// Creates a rectangle anchored at the origin with the given width
    /// and height. This is the conventional form for simulation fields.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative or non-finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width >= 0.0 && height >= 0.0 && width.is_finite() && height.is_finite(),
            "rectangle dimensions must be finite and non-negative, got {width} x {height}"
        );
        Rect {
            min: Vec2::ZERO,
            max: Vec2::new(width, height),
        }
    }

    /// Creates a square field of the given side length, anchored at the
    /// origin. `Rect::square(670.0)` is the paper's primary scenario.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative or non-finite.
    #[must_use]
    pub fn square(side: f64) -> Self {
        Rect::new(side, side)
    }

    /// Creates a rectangle from two opposite corners (any order).
    ///
    /// # Panics
    ///
    /// Panics if either corner has a non-finite component.
    #[must_use]
    pub fn from_corners(a: Vec2, b: Vec2) -> Self {
        assert!(
            a.is_finite() && b.is_finite(),
            "rectangle corners must be finite, got {a:?}, {b:?}"
        );
        Rect {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Lower-left corner.
    #[must_use]
    pub fn min(&self) -> Vec2 {
        self.min
    }

    /// Upper-right corner.
    #[must_use]
    pub fn max(&self) -> Vec2 {
        self.max
    }

    /// Width (x extent).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> Vec2 {
        self.min.lerp(self.max, 0.5)
    }

    /// Length of the diagonal — the maximum possible distance between
    /// two points in the field.
    #[must_use]
    pub fn diagonal(&self) -> f64 {
        self.min.distance(self.max)
    }

    /// Returns `true` if `p` lies inside the rectangle or on its
    /// boundary.
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the nearest point inside the rectangle.
    ///
    /// # Examples
    ///
    /// ```
    /// use mobic_geom::{Rect, Vec2};
    /// let r = Rect::new(10.0, 10.0);
    /// assert_eq!(r.clamp(Vec2::new(-5.0, 3.0)), Vec2::new(0.0, 3.0));
    /// ```
    #[must_use]
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        p.max(self.min).min(self.max)
    }

    /// Maps unit coordinates `(u, v) ∈ [0,1]²` to a point in the
    /// rectangle. Feeding in independent uniform samples yields a
    /// uniformly distributed point — this is how scenario generators
    /// place nodes without this crate depending on any RNG.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `u` or `v` is outside `[0, 1]`.
    #[must_use]
    pub fn point_at(&self, u: f64, v: f64) -> Vec2 {
        debug_assert!((0.0..=1.0).contains(&u), "u out of range: {u}");
        debug_assert!((0.0..=1.0).contains(&v), "v out of range: {v}");
        Vec2::new(
            self.min.x + u * self.width(),
            self.min.y + v * self.height(),
        )
    }

    /// Reflects a point that may lie outside the rectangle back inside,
    /// mirror-style (used by bouncing mobility models). Points already
    /// inside are returned unchanged. The reflection also returns which
    /// axes flipped so callers can reverse velocity components.
    ///
    /// For displacements larger than the field the reflection is applied
    /// repeatedly (true mirror folding).
    #[must_use]
    pub fn reflect(&self, p: Vec2) -> (Vec2, bool, bool) {
        let (x, fx) = reflect_axis(p.x, self.min.x, self.max.x);
        let (y, fy) = reflect_axis(p.y, self.min.y, self.max.y);
        (Vec2::new(x, y), fx, fy)
    }

    /// Wraps a point torus-style into the rectangle (used by wrapping
    /// highway models).
    #[must_use]
    pub fn wrap(&self, p: Vec2) -> Vec2 {
        Vec2::new(
            wrap_axis(p.x, self.min.x, self.max.x),
            wrap_axis(p.y, self.min.y, self.max.y),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// Reflects a scalar into `[lo, hi]`, reporting whether an odd number of
/// boundary reflections occurred (i.e. the direction of travel flipped).
fn reflect_axis(v: f64, lo: f64, hi: f64) -> (f64, bool) {
    let span = hi - lo;
    if span <= 0.0 {
        return (lo, false);
    }
    // Mirror-fold: positions repeat with period 2*span; the copy index k
    // counts how many boundaries were crossed, and odd k flips direction.
    let k = ((v - lo) / span).floor() as i64;
    let flipped = k.rem_euclid(2) != 0;
    let t = (v - lo).rem_euclid(2.0 * span);
    let pos = if t <= span {
        lo + t
    } else {
        lo + 2.0 * span - t
    };
    (pos, flipped)
}

/// Wraps a scalar into `[lo, hi)` torus-style.
fn wrap_axis(v: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 {
        return lo;
    }
    lo + (v - lo).rem_euclid(span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let r = Rect::new(100.0, 50.0);
        assert_eq!(r.min(), Vec2::ZERO);
        assert_eq!(r.max(), Vec2::new(100.0, 50.0));
        assert_eq!(r.width(), 100.0);
        assert_eq!(r.height(), 50.0);
        assert_eq!(r.area(), 5000.0);
        assert_eq!(r.center(), Vec2::new(50.0, 25.0));
    }

    #[test]
    fn square_ctor() {
        let r = Rect::square(670.0);
        assert_eq!(r.width(), 670.0);
        assert_eq!(r.height(), 670.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dimensions_panic() {
        let _ = Rect::new(-1.0, 5.0);
    }

    #[test]
    fn from_corners_normalizes_order() {
        let r = Rect::from_corners(Vec2::new(5.0, 1.0), Vec2::new(1.0, 5.0));
        assert_eq!(r.min(), Vec2::new(1.0, 1.0));
        assert_eq!(r.max(), Vec2::new(5.0, 5.0));
    }

    #[test]
    fn containment_includes_boundary() {
        let r = Rect::new(10.0, 10.0);
        assert!(r.contains(Vec2::ZERO));
        assert!(r.contains(Vec2::new(10.0, 10.0)));
        assert!(r.contains(Vec2::new(5.0, 0.0)));
        assert!(!r.contains(Vec2::new(10.0001, 5.0)));
        assert!(!r.contains(Vec2::new(5.0, -0.0001)));
    }

    #[test]
    fn clamping() {
        let r = Rect::new(10.0, 10.0);
        assert_eq!(r.clamp(Vec2::new(-1.0, 11.0)), Vec2::new(0.0, 10.0));
        assert_eq!(r.clamp(Vec2::new(5.0, 5.0)), Vec2::new(5.0, 5.0));
    }

    #[test]
    fn point_at_corners_and_center() {
        let r = Rect::new(100.0, 200.0);
        assert_eq!(r.point_at(0.0, 0.0), Vec2::ZERO);
        assert_eq!(r.point_at(1.0, 1.0), Vec2::new(100.0, 200.0));
        assert_eq!(r.point_at(0.5, 0.5), Vec2::new(50.0, 100.0));
    }

    #[test]
    fn diagonal_is_max_distance() {
        let r = Rect::new(3.0, 4.0);
        assert_eq!(r.diagonal(), 5.0);
    }

    #[test]
    fn reflect_inside_is_identity() {
        let r = Rect::new(10.0, 10.0);
        let (p, fx, fy) = r.reflect(Vec2::new(3.0, 7.0));
        assert_eq!(p, Vec2::new(3.0, 7.0));
        assert!(!fx);
        assert!(!fy);
    }

    #[test]
    fn reflect_simple_overshoot() {
        let r = Rect::new(10.0, 10.0);
        let (p, fx, fy) = r.reflect(Vec2::new(12.0, 5.0));
        assert!(p.approx_eq(Vec2::new(8.0, 5.0)), "{p:?}");
        assert!(fx);
        assert!(!fy);

        let (p, fx, _) = r.reflect(Vec2::new(-3.0, 5.0));
        assert!(p.approx_eq(Vec2::new(3.0, 5.0)), "{p:?}");
        assert!(fx);
    }

    #[test]
    fn reflect_multiple_folds() {
        let r = Rect::new(10.0, 10.0);
        // 25 folds to: 25 -> mirror at 10 -> 20-25=... fold into [0,20) is 5,
        // which lies in the first (unflipped) half => position 5, two flips
        // (even) means direction unchanged.
        let (p, fx, _) = r.reflect(Vec2::new(25.0, 0.0));
        assert!(p.approx_eq(Vec2::new(5.0, 0.0)), "{p:?}");
        assert!(!fx, "two reflections cancel direction flip");
    }

    #[test]
    fn reflect_result_always_inside() {
        let r = Rect::new(7.0, 13.0);
        for i in -50..50 {
            let v = Vec2::new(i as f64 * 1.7, i as f64 * -2.3);
            let (p, _, _) = r.reflect(v);
            assert!(
                r.contains(p) || r.clamp(p).distance(p) < 1e-9,
                "reflected point {p:?} escaped {r:?} from {v:?}"
            );
        }
    }

    #[test]
    fn wrap_behavior() {
        let r = Rect::new(10.0, 10.0);
        assert!(r.wrap(Vec2::new(12.0, -3.0)).approx_eq(Vec2::new(2.0, 7.0)));
        assert!(r.wrap(Vec2::new(5.0, 5.0)).approx_eq(Vec2::new(5.0, 5.0)));
        assert!(r
            .wrap(Vec2::new(-12.0, 23.0))
            .approx_eq(Vec2::new(8.0, 3.0)));
    }

    #[test]
    fn degenerate_rect() {
        let r = Rect::new(0.0, 0.0);
        assert_eq!(r.area(), 0.0);
        assert!(r.contains(Vec2::ZERO));
        let (p, _, _) = r.reflect(Vec2::new(5.0, 5.0));
        assert_eq!(p, Vec2::ZERO);
    }
}
