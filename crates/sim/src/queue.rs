//! The timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A future-event list: a min-priority queue of `(SimTime, E)` pairs.
///
/// Events scheduled for the same instant are delivered in insertion
/// order (FIFO), which makes simulations deterministic even when many
/// events share a timestamp (e.g. unjittered hello broadcasts).
///
/// # Examples
///
/// ```
/// use mobic_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Manual ordering: earliest time first, then lowest sequence number.
// (BinaryHeap is a max-heap, so comparisons are reversed.)
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_time_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
    }

    #[test]
    fn large_random_order_is_sorted_stable() {
        // Pseudo-random insertion order; verify global sort + stability.
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut x: u64 = 12345;
        for i in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 33) % 50; // many collisions
            q.push(SimTime::from_micros(t), i);
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        for (t, i) in expected {
            let (qt, qi) = q.pop().unwrap();
            assert_eq!((qt.as_micros(), qi), (t, i));
        }
    }
}
