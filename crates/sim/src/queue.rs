//! The timestamped event queue: the sequential [`EventQueue`], the
//! [`Queue`] abstraction over event storage, and the per-shard
//! [`ShardedEventQueue`] whose merged pop order is provably identical
//! to the sequential queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// The storage interface a [`Simulation`](crate::Simulation) drives:
/// push timestamped events, pop them in deterministic
/// earliest-first order.
///
/// Two implementations exist: [`EventQueue`] (one heap, the
/// reference) and [`ShardedEventQueue`] (per-shard heaps with a
/// deterministic merge). The contract is that for any identical
/// sequence of `push`/`pop` calls, every implementation returns the
/// events in exactly the same order — the simulation result must not
/// depend on which queue backs it.
pub trait Queue<E> {
    /// Schedules `event` at `time`.
    fn push(&mut self, time: SimTime, event: E);

    /// Removes and returns the earliest event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// `true` if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-assigns shard ownership (`owners[node] = shard`) for
    /// implementations that partition events by owner. Placement is
    /// storage-only — it can never change pop order — so the default
    /// is a no-op and single-heap queues ignore it.
    fn assign_owners(&mut self, owners: &[u32]) {
        let _ = owners;
    }
}

/// Checkpoint support for event queues: drain every pending entry in
/// canonical `(time, seq)` order and rebuild a queue from such a
/// drained list with the original merge keys preserved.
///
/// The canonical form is queue-implementation-agnostic: pop order is
/// governed solely by the `(time, seq)` merge key, so a drained list
/// written from a binary heap restores into a calendar queue (or a
/// sharded queue, under any owner map) with a provably identical
/// future pop sequence. The trait lives in this crate because
/// [`Entry`] keys are deliberately unforgeable from outside — restore
/// is the one sanctioned way to re-mint them, and it may only be fed
/// keys a drain produced.
///
/// Draining is destructive; callers that snapshot a *live* queue
/// re-insert the drained entries via
/// [`restore_entry`](Self::restore_entry), which restores the exact
/// pop order (the keys are unchanged, and placement cannot matter).
pub trait SnapshotQueue<E>: Queue<E> {
    /// Removes every pending entry, returning `(time, seq, event)`
    /// triples in ascending `(time, seq)` order — the order `pop`
    /// would have returned them.
    fn drain_canonical(&mut self) -> Vec<(SimTime, u64, E)>;

    /// Re-inserts an entry under its original merge key, bypassing
    /// sequence minting. Feeding keys that did not come from a drain
    /// of the same logical queue breaks the FIFO tie-break contract.
    fn restore_entry(&mut self, time: SimTime, seq: u64, event: E);

    /// The sequence number the next [`Queue::push`] will mint.
    fn next_seq(&self) -> u64;

    /// Sets the sequence number the next [`Queue::push`] will mint —
    /// restored queues must continue the saved counter so post-resume
    /// pushes tie-break exactly as the uninterrupted run's would.
    fn set_next_seq(&mut self, next: u64);
}

/// A future-event list: a min-priority queue of `(SimTime, E)` pairs.
///
/// Events scheduled for the same instant are delivered in insertion
/// order (FIFO), which makes simulations deterministic even when many
/// events share a timestamp (e.g. unjittered hello broadcasts).
///
/// # Examples
///
/// ```
/// use mobic_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

/// A scheduled event together with its merge key `(time, seq)`.
///
/// Opaque outside this crate: entries are minted by the queues (which
/// own the shared sequence counter) and handed to an [`EntryStore`]
/// for storage. The fields stay private so no embedder can forge a
/// sequence number and break the FIFO tie-break contract.
#[derive(Debug, Clone)]
pub struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> Entry<E> {
    /// The `(time, seq)` merge key that governs pop order.
    #[must_use]
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

// Manual ordering: earliest time first, then lowest sequence number.
// (BinaryHeap is a max-heap, so comparisons are reversed.)
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Queue<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, event: E) {
        EventQueue::push(self, time, event);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }

    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }
}

impl<E> SnapshotQueue<E> for EventQueue<E> {
    fn drain_canonical(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push((e.time, e.seq, e.event));
        }
        out
    }

    fn restore_entry(&mut self, time: SimTime, seq: u64, event: E) {
        self.heap.push(Entry { time, seq, event });
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn set_next_seq(&mut self, next: u64) {
        self.next_seq = next;
    }
}

/// Storage backing one shard of a [`ShardedEventQueue`]: a container
/// of [`Entry`] values that can always surface its minimum
/// `(time, seq)` key.
///
/// The store decides *how* entries are kept (binary heap, calendar
/// buckets, …), never *which* entry is the minimum — the merge key is
/// fixed, so swapping stores can change constant factors only, not
/// pop order. Implemented by `BinaryHeap<Entry<E>>` (the reference)
/// and [`CalendarStore`](crate::CalendarStore) (bucketed, O(1)
/// amortized for near-periodic workloads).
pub trait EntryStore<E> {
    /// Creates a store pre-sized for about `cap` concurrently pending
    /// entries. `period_hint` is the expected event period (the hello
    /// broadcast interval for the MANET runner); bucketed stores
    /// derive their bucket width from it, heaps ignore it.
    fn new_store(cap: usize, period_hint: SimTime) -> Self;

    /// Adds an entry.
    fn insert(&mut self, entry: Entry<E>);

    /// The `(time, seq)` key of the minimum entry, or `None` if empty.
    fn min_key(&self) -> Option<(SimTime, u64)>;

    /// Removes and returns the minimum entry.
    fn take_min(&mut self) -> Option<Entry<E>>;

    /// Number of stored entries.
    fn store_len(&self) -> usize;
}

impl<E> EntryStore<E> for BinaryHeap<Entry<E>> {
    fn new_store(cap: usize, _period_hint: SimTime) -> Self {
        BinaryHeap::with_capacity(cap)
    }

    fn insert(&mut self, entry: Entry<E>) {
        self.push(entry);
    }

    fn min_key(&self) -> Option<(SimTime, u64)> {
        self.peek().map(Entry::key)
    }

    fn take_min(&mut self) -> Option<Entry<E>> {
        self.pop()
    }

    fn store_len(&self) -> usize {
        self.len()
    }
}

/// Routing identity of an event in a [`ShardedEventQueue`]: the
/// owning node (or [`EventKey::GLOBAL`]) plus a small event-kind
/// discriminant.
///
/// The key decides *where* an event is stored (which shard heap),
/// never *when* it pops — pop order is governed solely by the merge
/// key `(time, seq)`; see the [`ShardedEventQueue`] docs for why the
/// `node`/`kind` components must stay out of the ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    /// Owning node index, or [`EventKey::GLOBAL`] for engine-wide
    /// events (samplers, fault injections) that no single node owns.
    pub node: u32,
    /// Event-kind discriminant, carried for diagnostics and shard
    /// accounting. Deliberately **not** part of the pop order.
    pub kind: u8,
}

impl EventKey {
    /// Sentinel `node` value for engine-wide events; they always
    /// enqueue on shard 0.
    pub const GLOBAL: u32 = u32::MAX;

    /// Key for an event owned by `node`.
    #[must_use]
    pub fn node(node: u32, kind: u8) -> Self {
        EventKey { node, kind }
    }

    /// Key for an engine-wide event.
    #[must_use]
    pub fn global(kind: u8) -> Self {
        EventKey {
            node: Self::GLOBAL,
            kind,
        }
    }

    /// `true` for engine-wide events.
    #[must_use]
    pub fn is_global(&self) -> bool {
        self.node == Self::GLOBAL
    }
}

/// Per-shard future-event lists with a deterministic merge: events
/// are stored in one binary heap per shard (routed by an
/// [`EventKey`]-producing router plus an owner map), and `pop`
/// returns the global minimum across shards.
///
/// # Merge determinism: why the tie-break is `(time, seq)`
///
/// The sequential [`EventQueue`] breaks `SimTime` ties with a global
/// insertion counter. A sharded queue must reproduce that order
/// *exactly*, or sharded runs stop being byte-identical. The obvious
/// "shard-independent" composite key `(time, node, kind, per-shard
/// seq)` does **not** work:
///
/// * per-shard counters are incomparable across shards, and
/// * a static `node`/`kind` rank reorders same-instant events whose
///   sequential order depends on *when they were scheduled*.
///   Counterexample: node B's hello at t = 3 schedules B's next hello
///   for t = 10; node A's hello at t = 5 schedules A's (adaptive
///   pacing can land both on the same microsecond). The insertion
///   counter pops B first — it was scheduled first — while any
///   node-ordered key pops A < B. Divergence.
///
/// The resolution is that scheduling is already centralized: every
/// `push` happens on the single deterministic commit thread, in the
/// same order the sequential engine would perform it. The queue can
/// therefore allocate one **shared** `seq` across all shards — the
/// exact values the sequential counter would hand out — and
/// merge-pop the global minimum `(time, seq)`. Shard placement (the
/// owner map, spatial or otherwise) then provably cannot affect pop
/// order, which is what lets an embedder rebalance ownership at
/// window boundaries for free. The tests in this module pin the
/// property: identical push sequences through [`EventQueue`] and
/// `ShardedEventQueue` pop identically under every owner map and
/// shard count.
pub struct ShardedEventQueue<E, R, S = BinaryHeap<Entry<E>>> {
    shards: Vec<S>,
    /// `owners[node] = shard`; nodes beyond the map (or before any
    /// [`assign_owners`](Queue::assign_owners) call) fall back to
    /// `node % n_shards` round-robin placement.
    owners: Vec<u32>,
    router: R,
    next_seq: u64,
    len: usize,
}

impl<E, R: Fn(&E) -> EventKey> ShardedEventQueue<E, R> {
    /// Creates an empty queue with `n_shards` shard heaps (at least
    /// one) and the given event router.
    #[must_use]
    pub fn new(n_shards: u32, router: R) -> Self {
        Self::with_capacity(0, n_shards, router)
    }

    /// Like [`new`](Self::new), but pre-sizing each shard heap for an
    /// even share of `cap` pending events.
    #[must_use]
    pub fn with_capacity(cap: usize, n_shards: u32, router: R) -> Self {
        Self::with_store(cap, n_shards, router, SimTime::ZERO)
    }
}

impl<E, R: Fn(&E) -> EventKey, S: EntryStore<E>> ShardedEventQueue<E, R, S> {
    /// Creates an empty queue over `n_shards` stores of type `S` (at
    /// least one), each pre-sized for an even share of `cap` pending
    /// events. `period_hint` is forwarded to
    /// [`EntryStore::new_store`] (bucket-width derivation for
    /// calendar stores; ignored by heaps).
    ///
    /// The owner map is pre-reserved for `cap` nodes so the first
    /// [`assign_owners`](Queue::assign_owners) call — and every
    /// rebalance after it — reuses the same allocation (`cap` is the
    /// runner's node-count-derived queue depth, which bounds the
    /// owner-map length).
    #[must_use]
    pub fn with_store(cap: usize, n_shards: u32, router: R, period_hint: SimTime) -> Self {
        let n = (n_shards as usize).max(1);
        let per_shard = cap / n + 1;
        ShardedEventQueue {
            shards: (0..n)
                .map(|_| S::new_store(per_shard, period_hint))
                .collect(),
            owners: Vec::with_capacity(cap),
            router,
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of shard stores.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard heap that `key` routes to under the current owner
    /// map: shard 0 for global events, the owner-map entry (modulo
    /// the shard count, defensively) for owned nodes, round-robin for
    /// nodes the map does not cover.
    #[must_use]
    pub fn shard_for(&self, key: EventKey) -> usize {
        if key.is_global() {
            return 0;
        }
        let n = self.shards.len();
        match self.owners.get(key.node as usize) {
            Some(&s) => s as usize % n,
            None => key.node as usize % n,
        }
    }
}

// Manual impl: `router` is usually a fn pointer or closure, which has
// no useful `Debug`; show the structural state instead.
impl<E, R, S> std::fmt::Debug for ShardedEventQueue<E, R, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEventQueue")
            .field("n_shards", &self.shards.len())
            .field("len", &self.len)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl<E, R: Fn(&E) -> EventKey, S: EntryStore<E>> Queue<E> for ShardedEventQueue<E, R, S> {
    fn push(&mut self, time: SimTime, event: E) {
        // One shared sequence counter across all shards: pushes happen
        // in the same (deterministic, single-threaded) order as the
        // sequential engine's, so `seq` values — and therefore the
        // merged pop order — match the sequential queue exactly.
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = self.shard_for((self.router)(&event));
        self.shards[shard].insert(Entry { time, seq, event });
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        // Merge step: the global minimum `(time, seq)` over the shard
        // heads. `seq` values are globally unique, so the minimum is
        // unambiguous.
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, store) in self.shards.iter().enumerate() {
            if let Some((t, s)) = store.min_key() {
                let better = match best {
                    None => true,
                    Some((bt, bs, _)) => (t, s) < (bt, bs),
                };
                if better {
                    best = Some((t, s, i));
                }
            }
        }
        let (_, _, shard) = best?;
        self.len -= 1;
        self.shards[shard].take_min().map(|e| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(EntryStore::min_key)
            .min()
            .map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn assign_owners(&mut self, owners: &[u32]) {
        // Placement-only: events already queued stay on the shard
        // they were pushed to (pop order cannot tell the difference);
        // future pushes follow the new map. `clear` + `extend` reuses
        // the pre-reserved allocation, so per-window rebalances are
        // allocation-free once the map has reached its high-water
        // length.
        self.owners.clear();
        self.owners.extend_from_slice(owners);
    }
}

impl<E, R: Fn(&E) -> EventKey, S: EntryStore<E>> SnapshotQueue<E> for ShardedEventQueue<E, R, S> {
    fn drain_canonical(&mut self) -> Vec<(SimTime, u64, E)> {
        // Shard placement is storage-only, so draining shard-by-shard
        // and sorting by the merge key yields exactly the sequence the
        // merge-pop would have produced.
        let mut out = Vec::with_capacity(self.len);
        for store in &mut self.shards {
            while let Some(e) = store.take_min() {
                out.push((e.time, e.seq, e.event));
            }
        }
        out.sort_by_key(|&(t, s, _)| (t, s));
        self.len = 0;
        out
    }

    fn restore_entry(&mut self, time: SimTime, seq: u64, event: E) {
        let shard = self.shard_for((self.router)(&event));
        self.shards[shard].insert(Entry { time, seq, event });
        self.len += 1;
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn set_next_seq(&mut self, next: u64) {
        self.next_seq = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_time_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
    }

    #[test]
    fn large_random_order_is_sorted_stable() {
        // Pseudo-random insertion order; verify global sort + stability.
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut x: u64 = 12345;
        for i in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 33) % 50; // many collisions
            q.push(SimTime::from_micros(t), i);
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        for (t, i) in expected {
            let (qt, qi) = q.pop().unwrap();
            assert_eq!((qt.as_micros(), qi), (t, i));
        }
    }

    // ---- sharded queue ----

    /// Test event: `(node-or-global, kind)` — the router reads it
    /// directly.
    type TestEv = (u32, u8);

    fn route(ev: &TestEv) -> EventKey {
        if ev.0 == EventKey::GLOBAL {
            EventKey::global(ev.1)
        } else {
            EventKey::node(ev.0, ev.1)
        }
    }

    fn sharded(n_shards: u32) -> ShardedEventQueue<TestEv, fn(&TestEv) -> EventKey> {
        ShardedEventQueue::new(n_shards, route)
    }

    /// A deterministic LCG-driven schedule with many time collisions,
    /// mixed node/global events, and interleaved pops.
    fn adversarial_script(len: usize) -> Vec<(u64, TestEv, bool)> {
        let mut x: u64 = 99991;
        let mut script = Vec::with_capacity(len);
        for i in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 33) % 17; // heavy collisions
            let node = if x % 11 == 0 {
                EventKey::GLOBAL
            } else {
                (x % 23) as u32
            };
            let kind = (x % 3) as u8;
            let pop_now = x % 5 == 0 && i > 3;
            script.push((t, (node, kind), pop_now));
        }
        script
    }

    /// Runs `script` through the reference [`EventQueue`] and the
    /// queue under test in lockstep, asserting identical pops.
    fn assert_script_parity<Q: Queue<TestEv>>(
        script: &[(u64, TestEv, bool)],
        mut q: Q,
        label: &str,
    ) {
        let mut seq = EventQueue::new();
        for &(t, ev, pop_now) in script {
            let time = SimTime::from_micros(t);
            seq.push(time, ev);
            q.push(time, ev);
            if pop_now {
                assert_eq!(q.pop(), seq.pop(), "{label}");
            }
        }
        loop {
            let a = seq.pop();
            let b = q.pop();
            assert_eq!(a, b, "{label}");
            if a.is_none() {
                break;
            }
        }
    }

    /// The central property: for every shard count and owner map, the
    /// sharded queue pops the exact sequence the sequential queue
    /// does — including interleaved pushes and pops. The same script
    /// runs over calendar-backed shards, pinning the calendar store to
    /// the identical order.
    #[test]
    fn sharded_pop_order_identical_to_sequential() {
        let script = adversarial_script(600);
        let owner_maps: [Option<fn(u32) -> u32>; 4] = [
            None,                   // round-robin fallback
            Some(|_| 0),            // everything on one shard
            Some(|n| n % 7),        // arbitrary (clamped internally)
            Some(|n| (23 - n) % 5), // reversed-ish
        ];
        for n_shards in [1u32, 2, 3, 8, 64] {
            for map in owner_maps {
                let owners: Option<Vec<u32>> = map.map(|f| (0..23).map(f).collect());
                let mut sh = sharded(n_shards);
                let mut cal: crate::ShardedCalendarQueue<TestEv, fn(&TestEv) -> EventKey> =
                    ShardedEventQueue::with_store(8, n_shards, route, SimTime::from_micros(16));
                if let Some(owners) = &owners {
                    sh.assign_owners(owners);
                    cal.assign_owners(owners);
                }
                assert_script_parity(&script, sh, &format!("heap shards={n_shards}"));
                assert_script_parity(&script, cal, &format!("calendar shards={n_shards}"));
            }
        }
    }

    /// The plain [`CalendarQueue`](crate::CalendarQueue) pops the
    /// adversarial script identically to the reference queue, across
    /// profiles that exercise tiny/huge widths and forced resizes.
    #[test]
    fn calendar_pop_order_identical_to_sequential() {
        let script = adversarial_script(600);
        for (cap, hint_us) in [(0, 0), (4, 8), (64, 17), (600, 1_000_000)] {
            let q = crate::CalendarQueue::with_profile(cap, SimTime::from_micros(hint_us));
            assert_script_parity(&script, q, &format!("calendar cap={cap} hint={hint_us}"));
        }
    }

    /// The capacity audit: shard stores and the owner map keep their
    /// allocations across `assign_owners` rebalances, so per-window
    /// refreshes are free once warm.
    #[test]
    fn capacity_is_carried_across_owner_refreshes() {
        let mut sh = sharded(4);
        // `with_capacity` is routed through `with_store`, which also
        // pre-reserves the owner map.
        let mut pre: ShardedEventQueue<TestEv, fn(&TestEv) -> EventKey> =
            ShardedEventQueue::with_capacity(23, 4, route);
        assert!(pre.owners.capacity() >= 23);
        for round in 0..10u32 {
            let owners: Vec<u32> = (0..23).map(|n| (n + round) % 4).collect();
            sh.assign_owners(&owners);
            pre.assign_owners(&owners);
        }
        let warm = sh.owners.capacity();
        let pre_cap = pre.owners.capacity();
        let heap_caps: Vec<usize> = pre.shards.iter().map(BinaryHeap::capacity).collect();
        for round in 10..30u32 {
            let owners: Vec<u32> = (0..23).map(|n| (n + round) % 4).collect();
            sh.assign_owners(&owners);
            pre.assign_owners(&owners);
        }
        assert_eq!(sh.owners.capacity(), warm);
        assert_eq!(pre.owners.capacity(), pre_cap);
        let after: Vec<usize> = pre.shards.iter().map(BinaryHeap::capacity).collect();
        assert_eq!(after, heap_caps, "rebalancing must not touch shard storage");
    }

    /// Re-assigning owners mid-stream moves only *future* pushes; the
    /// pop order never changes.
    #[test]
    fn owner_reassignment_is_invisible_to_pop_order() {
        let script = adversarial_script(300);
        let mut seq = EventQueue::new();
        let mut sh = sharded(4);
        for (i, &(t, ev, _)) in script.iter().enumerate() {
            let time = SimTime::from_micros(t);
            seq.push(time, ev);
            Queue::push(&mut sh, time, ev);
            if i % 50 == 7 {
                // Rotate the whole map — the halo-exchange shape.
                let owners: Vec<u32> = (0..23).map(|n| (n + i as u32) % 4).collect();
                sh.assign_owners(&owners);
            }
        }
        loop {
            let a = seq.pop();
            assert_eq!(a, Queue::pop(&mut sh));
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn global_events_route_to_shard_zero() {
        let sh = sharded(4);
        assert_eq!(sh.shard_for(EventKey::global(1)), 0);
        assert!(EventKey::global(2).is_global());
        assert!(!EventKey::node(3, 0).is_global());
        // Owned nodes fall back to round-robin without a map.
        assert_eq!(sh.shard_for(EventKey::node(6, 0)), 2);
    }

    #[test]
    fn shard_for_honors_and_clamps_owner_map() {
        let mut sh = sharded(3);
        sh.assign_owners(&[2, 2, 0, 9]); // 9 is out of range → % 3
        assert_eq!(sh.shard_for(EventKey::node(0, 0)), 2);
        assert_eq!(sh.shard_for(EventKey::node(2, 0)), 0);
        assert_eq!(sh.shard_for(EventKey::node(3, 0)), 0);
        // Beyond the map: round-robin.
        assert_eq!(sh.shard_for(EventKey::node(7, 0)), 1);
    }

    #[test]
    fn sharded_len_peek_and_empty() {
        let mut sh = sharded(2);
        assert!(Queue::is_empty(&sh));
        assert_eq!(Queue::peek_time(&sh), None);
        Queue::push(&mut sh, SimTime::from_secs(5), (1, 0));
        Queue::push(&mut sh, SimTime::from_secs(2), (EventKey::GLOBAL, 1));
        assert_eq!(Queue::len(&sh), 2);
        assert_eq!(Queue::peek_time(&sh), Some(SimTime::from_secs(2)));
        assert_eq!(
            Queue::pop(&mut sh),
            Some((SimTime::from_secs(2), (EventKey::GLOBAL, 1)))
        );
        assert_eq!(Queue::pop(&mut sh), Some((SimTime::from_secs(5), (1, 0))));
        assert_eq!(Queue::pop(&mut sh), None);
        assert!(Queue::is_empty(&sh));
    }

    /// FIFO across *kinds* at the same instant follows insertion
    /// order, not kind rank — the counterexample from the type docs.
    #[test]
    fn same_instant_kind_order_is_insertion_order() {
        let t = SimTime::from_secs(1);
        let mut sh = sharded(4);
        // A "fault"-ish global event pushed between two node hellos.
        Queue::push(&mut sh, t, (5, 0));
        Queue::push(&mut sh, t, (EventKey::GLOBAL, 2));
        Queue::push(&mut sh, t, (1, 0));
        assert_eq!(Queue::pop(&mut sh), Some((t, (5, 0))));
        assert_eq!(Queue::pop(&mut sh), Some((t, (EventKey::GLOBAL, 2))));
        assert_eq!(Queue::pop(&mut sh), Some((t, (1, 0))));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut sh: ShardedEventQueue<TestEv, fn(&TestEv) -> EventKey> =
            ShardedEventQueue::new(0, route);
        assert_eq!(sh.n_shards(), 1);
        Queue::push(&mut sh, SimTime::ZERO, (0, 0));
        assert_eq!(Queue::pop(&mut sh), Some((SimTime::ZERO, (0, 0))));
    }

    /// Populates `q` with an adversarial prefix (pops included, so the
    /// sequence counter is ahead of the live entry count), then drains
    /// canonically and checks the triples are key-sorted with
    /// globally-unique sequence numbers.
    fn drain_is_canonical<Q: SnapshotQueue<TestEv>>(mut q: Q, label: &str) {
        let script = adversarial_script(200);
        for &(t, ev, pop_now) in &script {
            q.push(SimTime::from_micros(t), ev);
            if pop_now {
                let _ = q.pop();
            }
        }
        let before_len = q.len();
        let next = q.next_seq();
        let drained = q.drain_canonical();
        assert_eq!(drained.len(), before_len, "{label}");
        assert!(q.is_empty(), "{label}");
        assert!(
            drained
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "{label}: drain must be strictly key-sorted"
        );
        assert!(
            drained.iter().all(|&(_, s, _)| s < next),
            "{label}: drained seqs must predate the counter"
        );
    }

    #[test]
    fn drain_canonical_is_key_sorted_everywhere() {
        drain_is_canonical(EventQueue::new(), "heap");
        drain_is_canonical(
            crate::CalendarQueue::with_profile(8, SimTime::from_micros(16)),
            "calendar",
        );
        drain_is_canonical(sharded(4), "sharded-heap");
        let cal: crate::ShardedCalendarQueue<TestEv, fn(&TestEv) -> EventKey> =
            ShardedEventQueue::with_store(8, 3, route, SimTime::from_micros(16));
        drain_is_canonical(cal, "sharded-calendar");
    }

    /// The queue-agnostic restore property: a drain taken from any
    /// queue implementation, restored into any *other* implementation,
    /// continues with the identical pop sequence — including FIFO
    /// tie-breaks minted by post-restore pushes.
    #[test]
    fn canonical_restore_is_queue_agnostic() {
        let script = adversarial_script(300);
        // Build the donor on a heap queue and drain it mid-stream.
        let mut donor = EventQueue::new();
        for &(t, ev, pop_now) in &script {
            donor.push(SimTime::from_micros(t), ev);
            if pop_now {
                let _ = Queue::pop(&mut donor);
            }
        }
        let next = SnapshotQueue::next_seq(&donor);
        let drained = donor.drain_canonical();

        fn restore_and_drive<Q: SnapshotQueue<TestEv>>(
            mut q: Q,
            drained: &[(SimTime, u64, TestEv)],
            next: u64,
        ) -> Vec<(SimTime, TestEv)> {
            for &(t, s, ev) in drained {
                q.restore_entry(t, s, ev);
            }
            q.set_next_seq(next);
            assert_eq!(q.next_seq(), next);
            // Post-restore pushes collide with restored timestamps to
            // exercise the continued tie-break counter.
            for i in 0..20u32 {
                q.push(SimTime::from_micros(u64::from(i % 5)), (i, 9));
            }
            let mut out = Vec::new();
            while let Some(p) = q.pop() {
                out.push(p);
            }
            out
        }

        let reference = restore_and_drive(EventQueue::new(), &drained, next);
        let cal = restore_and_drive(
            crate::CalendarQueue::with_profile(4, SimTime::from_micros(7)),
            &drained,
            next,
        );
        assert_eq!(reference, cal, "heap drain → calendar restore");
        let sh = restore_and_drive(sharded(5), &drained, next);
        assert_eq!(reference, sh, "heap drain → sharded restore");
        let shc: crate::ShardedCalendarQueue<TestEv, fn(&TestEv) -> EventKey> =
            ShardedEventQueue::with_store(16, 2, route, SimTime::from_micros(3));
        let shc = restore_and_drive(shc, &drained, next);
        assert_eq!(reference, shc, "heap drain → sharded-calendar restore");
    }
}
