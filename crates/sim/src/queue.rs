//! The timestamped event queue: the sequential [`EventQueue`], the
//! [`Queue`] abstraction over event storage, and the per-shard
//! [`ShardedEventQueue`] whose merged pop order is provably identical
//! to the sequential queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// The storage interface a [`Simulation`](crate::Simulation) drives:
/// push timestamped events, pop them in deterministic
/// earliest-first order.
///
/// Two implementations exist: [`EventQueue`] (one heap, the
/// reference) and [`ShardedEventQueue`] (per-shard heaps with a
/// deterministic merge). The contract is that for any identical
/// sequence of `push`/`pop` calls, every implementation returns the
/// events in exactly the same order — the simulation result must not
/// depend on which queue backs it.
pub trait Queue<E> {
    /// Schedules `event` at `time`.
    fn push(&mut self, time: SimTime, event: E);

    /// Removes and returns the earliest event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// `true` if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-assigns shard ownership (`owners[node] = shard`) for
    /// implementations that partition events by owner. Placement is
    /// storage-only — it can never change pop order — so the default
    /// is a no-op and single-heap queues ignore it.
    fn assign_owners(&mut self, owners: &[u32]) {
        let _ = owners;
    }
}

/// A future-event list: a min-priority queue of `(SimTime, E)` pairs.
///
/// Events scheduled for the same instant are delivered in insertion
/// order (FIFO), which makes simulations deterministic even when many
/// events share a timestamp (e.g. unjittered hello broadcasts).
///
/// # Examples
///
/// ```
/// use mobic_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Manual ordering: earliest time first, then lowest sequence number.
// (BinaryHeap is a max-heap, so comparisons are reversed.)
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Queue<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, event: E) {
        EventQueue::push(self, time, event);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }

    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }
}

/// Routing identity of an event in a [`ShardedEventQueue`]: the
/// owning node (or [`EventKey::GLOBAL`]) plus a small event-kind
/// discriminant.
///
/// The key decides *where* an event is stored (which shard heap),
/// never *when* it pops — pop order is governed solely by the merge
/// key `(time, seq)`; see the [`ShardedEventQueue`] docs for why the
/// `node`/`kind` components must stay out of the ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    /// Owning node index, or [`EventKey::GLOBAL`] for engine-wide
    /// events (samplers, fault injections) that no single node owns.
    pub node: u32,
    /// Event-kind discriminant, carried for diagnostics and shard
    /// accounting. Deliberately **not** part of the pop order.
    pub kind: u8,
}

impl EventKey {
    /// Sentinel `node` value for engine-wide events; they always
    /// enqueue on shard 0.
    pub const GLOBAL: u32 = u32::MAX;

    /// Key for an event owned by `node`.
    #[must_use]
    pub fn node(node: u32, kind: u8) -> Self {
        EventKey { node, kind }
    }

    /// Key for an engine-wide event.
    #[must_use]
    pub fn global(kind: u8) -> Self {
        EventKey {
            node: Self::GLOBAL,
            kind,
        }
    }

    /// `true` for engine-wide events.
    #[must_use]
    pub fn is_global(&self) -> bool {
        self.node == Self::GLOBAL
    }
}

/// Per-shard future-event lists with a deterministic merge: events
/// are stored in one binary heap per shard (routed by an
/// [`EventKey`]-producing router plus an owner map), and `pop`
/// returns the global minimum across shards.
///
/// # Merge determinism: why the tie-break is `(time, seq)`
///
/// The sequential [`EventQueue`] breaks `SimTime` ties with a global
/// insertion counter. A sharded queue must reproduce that order
/// *exactly*, or sharded runs stop being byte-identical. The obvious
/// "shard-independent" composite key `(time, node, kind, per-shard
/// seq)` does **not** work:
///
/// * per-shard counters are incomparable across shards, and
/// * a static `node`/`kind` rank reorders same-instant events whose
///   sequential order depends on *when they were scheduled*.
///   Counterexample: node B's hello at t = 3 schedules B's next hello
///   for t = 10; node A's hello at t = 5 schedules A's (adaptive
///   pacing can land both on the same microsecond). The insertion
///   counter pops B first — it was scheduled first — while any
///   node-ordered key pops A < B. Divergence.
///
/// The resolution is that scheduling is already centralized: every
/// `push` happens on the single deterministic commit thread, in the
/// same order the sequential engine would perform it. The queue can
/// therefore allocate one **shared** `seq` across all shards — the
/// exact values the sequential counter would hand out — and
/// merge-pop the global minimum `(time, seq)`. Shard placement (the
/// owner map, spatial or otherwise) then provably cannot affect pop
/// order, which is what lets an embedder rebalance ownership at
/// window boundaries for free. The tests in this module pin the
/// property: identical push sequences through [`EventQueue`] and
/// `ShardedEventQueue` pop identically under every owner map and
/// shard count.
pub struct ShardedEventQueue<E, R> {
    shards: Vec<BinaryHeap<Entry<E>>>,
    /// `owners[node] = shard`; nodes beyond the map (or before any
    /// [`assign_owners`](Queue::assign_owners) call) fall back to
    /// `node % n_shards` round-robin placement.
    owners: Vec<u32>,
    router: R,
    next_seq: u64,
    len: usize,
}

impl<E, R: Fn(&E) -> EventKey> ShardedEventQueue<E, R> {
    /// Creates an empty queue with `n_shards` shard heaps (at least
    /// one) and the given event router.
    #[must_use]
    pub fn new(n_shards: u32, router: R) -> Self {
        Self::with_capacity(0, n_shards, router)
    }

    /// Like [`new`](Self::new), but pre-sizing each shard heap for an
    /// even share of `cap` pending events.
    #[must_use]
    pub fn with_capacity(cap: usize, n_shards: u32, router: R) -> Self {
        let n = (n_shards as usize).max(1);
        let per_shard = cap / n + 1;
        ShardedEventQueue {
            shards: (0..n)
                .map(|_| BinaryHeap::with_capacity(per_shard))
                .collect(),
            owners: Vec::new(),
            router,
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of shard heaps.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard heap that `key` routes to under the current owner
    /// map: shard 0 for global events, the owner-map entry (modulo
    /// the shard count, defensively) for owned nodes, round-robin for
    /// nodes the map does not cover.
    #[must_use]
    pub fn shard_for(&self, key: EventKey) -> usize {
        if key.is_global() {
            return 0;
        }
        let n = self.shards.len();
        match self.owners.get(key.node as usize) {
            Some(&s) => s as usize % n,
            None => key.node as usize % n,
        }
    }
}

// Manual impl: `router` is usually a fn pointer or closure, which has
// no useful `Debug`; show the structural state instead.
impl<E, R> std::fmt::Debug for ShardedEventQueue<E, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEventQueue")
            .field("n_shards", &self.shards.len())
            .field("len", &self.len)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl<E, R: Fn(&E) -> EventKey> Queue<E> for ShardedEventQueue<E, R> {
    fn push(&mut self, time: SimTime, event: E) {
        // One shared sequence counter across all shards: pushes happen
        // in the same (deterministic, single-threaded) order as the
        // sequential engine's, so `seq` values — and therefore the
        // merged pop order — match the sequential queue exactly.
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = self.shard_for((self.router)(&event));
        self.shards[shard].push(Entry { time, seq, event });
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        // Merge step: the global minimum `(time, seq)` over the shard
        // heads. `seq` values are globally unique, so the minimum is
        // unambiguous.
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(head) = heap.peek() {
                let better = match best {
                    None => true,
                    Some((t, s, _)) => (head.time, head.seq) < (t, s),
                };
                if better {
                    best = Some((head.time, head.seq, i));
                }
            }
        }
        let (_, _, shard) = best?;
        self.len -= 1;
        self.shards[shard].pop().map(|e| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|h| h.peek().map(|e| (e.time, e.seq)))
            .min()
            .map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn assign_owners(&mut self, owners: &[u32]) {
        // Placement-only: events already queued stay on the shard
        // they were pushed to (pop order cannot tell the difference);
        // future pushes follow the new map.
        self.owners.clear();
        self.owners.extend_from_slice(owners);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_time_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
    }

    #[test]
    fn large_random_order_is_sorted_stable() {
        // Pseudo-random insertion order; verify global sort + stability.
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut x: u64 = 12345;
        for i in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 33) % 50; // many collisions
            q.push(SimTime::from_micros(t), i);
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        for (t, i) in expected {
            let (qt, qi) = q.pop().unwrap();
            assert_eq!((qt.as_micros(), qi), (t, i));
        }
    }

    // ---- sharded queue ----

    /// Test event: `(node-or-global, kind)` — the router reads it
    /// directly.
    type TestEv = (u32, u8);

    fn route(ev: &TestEv) -> EventKey {
        if ev.0 == EventKey::GLOBAL {
            EventKey::global(ev.1)
        } else {
            EventKey::node(ev.0, ev.1)
        }
    }

    fn sharded(n_shards: u32) -> ShardedEventQueue<TestEv, fn(&TestEv) -> EventKey> {
        ShardedEventQueue::new(n_shards, route)
    }

    /// A deterministic LCG-driven schedule with many time collisions,
    /// mixed node/global events, and interleaved pops.
    fn adversarial_script(len: usize) -> Vec<(u64, TestEv, bool)> {
        let mut x: u64 = 99991;
        let mut script = Vec::with_capacity(len);
        for i in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 33) % 17; // heavy collisions
            let node = if x % 11 == 0 {
                EventKey::GLOBAL
            } else {
                (x % 23) as u32
            };
            let kind = (x % 3) as u8;
            let pop_now = x % 5 == 0 && i > 3;
            script.push((t, (node, kind), pop_now));
        }
        script
    }

    /// The central property: for every shard count and owner map, the
    /// sharded queue pops the exact sequence the sequential queue
    /// does — including interleaved pushes and pops.
    #[test]
    fn sharded_pop_order_identical_to_sequential() {
        let script = adversarial_script(600);
        let owner_maps: [Option<fn(u32) -> u32>; 4] = [
            None,                   // round-robin fallback
            Some(|_| 0),            // everything on one shard
            Some(|n| n % 7),        // arbitrary (clamped internally)
            Some(|n| (23 - n) % 5), // reversed-ish
        ];
        for n_shards in [1u32, 2, 3, 8, 64] {
            for map in owner_maps {
                let mut seq = EventQueue::new();
                let mut sh = sharded(n_shards);
                if let Some(f) = map {
                    let owners: Vec<u32> = (0..23).map(f).collect();
                    sh.assign_owners(&owners);
                }
                for &(t, ev, pop_now) in &script {
                    let time = SimTime::from_micros(t);
                    seq.push(time, ev);
                    Queue::push(&mut sh, time, ev);
                    if pop_now {
                        assert_eq!(Queue::pop(&mut sh), seq.pop());
                    }
                }
                loop {
                    let a = seq.pop();
                    let b = Queue::pop(&mut sh);
                    assert_eq!(a, b, "shards={n_shards}");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// Re-assigning owners mid-stream moves only *future* pushes; the
    /// pop order never changes.
    #[test]
    fn owner_reassignment_is_invisible_to_pop_order() {
        let script = adversarial_script(300);
        let mut seq = EventQueue::new();
        let mut sh = sharded(4);
        for (i, &(t, ev, _)) in script.iter().enumerate() {
            let time = SimTime::from_micros(t);
            seq.push(time, ev);
            Queue::push(&mut sh, time, ev);
            if i % 50 == 7 {
                // Rotate the whole map — the halo-exchange shape.
                let owners: Vec<u32> = (0..23).map(|n| (n + i as u32) % 4).collect();
                sh.assign_owners(&owners);
            }
        }
        loop {
            let a = seq.pop();
            assert_eq!(a, Queue::pop(&mut sh));
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn global_events_route_to_shard_zero() {
        let sh = sharded(4);
        assert_eq!(sh.shard_for(EventKey::global(1)), 0);
        assert!(EventKey::global(2).is_global());
        assert!(!EventKey::node(3, 0).is_global());
        // Owned nodes fall back to round-robin without a map.
        assert_eq!(sh.shard_for(EventKey::node(6, 0)), 2);
    }

    #[test]
    fn shard_for_honors_and_clamps_owner_map() {
        let mut sh = sharded(3);
        sh.assign_owners(&[2, 2, 0, 9]); // 9 is out of range → % 3
        assert_eq!(sh.shard_for(EventKey::node(0, 0)), 2);
        assert_eq!(sh.shard_for(EventKey::node(2, 0)), 0);
        assert_eq!(sh.shard_for(EventKey::node(3, 0)), 0);
        // Beyond the map: round-robin.
        assert_eq!(sh.shard_for(EventKey::node(7, 0)), 1);
    }

    #[test]
    fn sharded_len_peek_and_empty() {
        let mut sh = sharded(2);
        assert!(Queue::is_empty(&sh));
        assert_eq!(Queue::peek_time(&sh), None);
        Queue::push(&mut sh, SimTime::from_secs(5), (1, 0));
        Queue::push(&mut sh, SimTime::from_secs(2), (EventKey::GLOBAL, 1));
        assert_eq!(Queue::len(&sh), 2);
        assert_eq!(Queue::peek_time(&sh), Some(SimTime::from_secs(2)));
        assert_eq!(
            Queue::pop(&mut sh),
            Some((SimTime::from_secs(2), (EventKey::GLOBAL, 1)))
        );
        assert_eq!(Queue::pop(&mut sh), Some((SimTime::from_secs(5), (1, 0))));
        assert_eq!(Queue::pop(&mut sh), None);
        assert!(Queue::is_empty(&sh));
    }

    /// FIFO across *kinds* at the same instant follows insertion
    /// order, not kind rank — the counterexample from the type docs.
    #[test]
    fn same_instant_kind_order_is_insertion_order() {
        let t = SimTime::from_secs(1);
        let mut sh = sharded(4);
        // A "fault"-ish global event pushed between two node hellos.
        Queue::push(&mut sh, t, (5, 0));
        Queue::push(&mut sh, t, (EventKey::GLOBAL, 2));
        Queue::push(&mut sh, t, (1, 0));
        assert_eq!(Queue::pop(&mut sh), Some((t, (5, 0))));
        assert_eq!(Queue::pop(&mut sh), Some((t, (EventKey::GLOBAL, 2))));
        assert_eq!(Queue::pop(&mut sh), Some((t, (1, 0))));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut sh: ShardedEventQueue<TestEv, fn(&TestEv) -> EventKey> =
            ShardedEventQueue::new(0, route);
        assert_eq!(sh.n_shards(), 1);
        Queue::push(&mut sh, SimTime::ZERO, (0, 0));
        assert_eq!(Queue::pop(&mut sh), Some((SimTime::ZERO, (0, 0))));
    }
}
