//! The simulation run loop.

use std::marker::PhantomData;

use crate::{queue::Queue, EventQueue, SimTime};

/// The scheduling interface handed to event handlers while the
/// simulation runs: the current time plus the ability to schedule
/// further events.
///
/// Handlers receive `&mut Scheduler<E, Q>` rather than the whole
/// [`Simulation`] so they cannot re-enter the run loop. The queue
/// parameter `Q` defaults to [`EventQueue`], so existing
/// `Scheduler<E>` annotations keep meaning the sequential engine.
#[derive(Debug)]
pub struct Scheduler<E, Q = EventQueue<E>> {
    now: SimTime,
    queue: Q,
    _event: PhantomData<fn() -> E>,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler::with_queue(EventQueue::new())
    }

    fn with_capacity(capacity: usize) -> Self {
        Scheduler::with_queue(EventQueue::with_capacity(capacity))
    }
}

impl<E, Q: Queue<E>> Scheduler<E, Q> {
    fn with_queue(queue: Q) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue,
            _event: PhantomData,
        }
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current time) — a
    /// causality violation that would silently corrupt a simulation if
    /// allowed through.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A discrete-event simulation: an event queue plus a clock, driven to
/// completion by [`Simulation::run_until`].
///
/// The event type `E` is chosen by the embedding application (for the
/// MANET simulator it is hello broadcasts, contention deadlines, and
/// metric samplers). The queue type `Q` defaults to the sequential
/// [`EventQueue`]; pass a
/// [`ShardedEventQueue`](crate::ShardedEventQueue) via
/// [`with_queue`](Simulation::with_queue) for per-shard storage with
/// an identical deterministic pop order.
///
/// # Examples
///
/// A self-rescheduling periodic event:
///
/// ```
/// use mobic_sim::{Simulation, SimTime};
///
/// let mut sim = Simulation::new();
/// sim.schedule_at(SimTime::ZERO, ());
/// let mut ticks = 0;
/// sim.run_until(SimTime::from_secs(10), |_, (), sched| {
///     ticks += 1;
///     sched.schedule_in(SimTime::from_secs(2), ());
/// });
/// // t = 0, 2, 4, 6, 8, 10 (events at exactly the horizon still fire).
/// assert_eq!(ticks, 6);
/// ```
#[derive(Debug)]
pub struct Simulation<E, Q = EventQueue<E>> {
    sched: Scheduler<E, Q>,
    processed: u64,
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Simulation {
            sched: Scheduler::new(),
            processed: 0,
        }
    }

    /// Like [`new`](Self::new), but with the event queue pre-sized for
    /// `capacity` concurrently pending events. A self-rescheduling
    /// workload whose steady-state queue depth is known up front (one
    /// hello per node plus a sampler, for the MANET runner) never
    /// reallocates the queue mid-run.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Simulation {
            sched: Scheduler::with_capacity(capacity),
            processed: 0,
        }
    }
}

impl<E, Q: Queue<E>> Simulation<E, Q> {
    /// Creates an empty simulation at time zero driving the supplied
    /// queue — the entry point for sharded storage.
    #[must_use]
    pub fn with_queue(queue: Q) -> Self {
        Simulation {
            sched: Scheduler::with_queue(queue),
            processed: 0,
        }
    }

    /// Direct access to the backing queue, for maintenance between
    /// [`run_until`](Self::run_until) windows (e.g. re-assigning shard
    /// ownership). The queue's pop order is placement-independent, so
    /// nothing reachable here can change simulation results.
    pub fn queue_mut(&mut self) -> &mut Q {
        &mut self.sched.queue
    }

    /// Schedules an event before the run starts (or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.sched.schedule_at(at, event);
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Runs the simulation until the queue drains or the next event
    /// lies strictly after `horizon`. Events scheduled exactly at
    /// `horizon` are processed. The clock is left at the later of its
    /// current value and `horizon`.
    ///
    /// The handler receives `(now, event, &mut Scheduler)` and may
    /// schedule further events.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut Scheduler<E, Q>),
    {
        self.run_until_stoppable(horizon, &mut handler, |_| false);
    }

    /// Like [`run_until`](Self::run_until), but consults `stop` with
    /// the processed-event count *before* popping each event; a `true`
    /// verdict suspends the run between events and returns `true`.
    ///
    /// On a stop the clock stays at the last processed event's time —
    /// it does **not** advance to `horizon` — so the simulation state
    /// is exactly "after event `N`, before event `N + 1`": the shape a
    /// checkpoint captures and a resume continues from. Returns
    /// `false` when the run reached `horizon` normally (the clock then
    /// advances as `run_until` does).
    pub fn run_until_stoppable<F, S>(
        &mut self,
        horizon: SimTime,
        mut handler: F,
        mut stop: S,
    ) -> bool
    where
        F: FnMut(SimTime, E, &mut Scheduler<E, Q>),
        S: FnMut(u64) -> bool,
    {
        while let Some(t) = self.sched.queue.peek_time() {
            if t > horizon {
                break;
            }
            if stop(self.processed) {
                return true;
            }
            let Some((t, ev)) = self.sched.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.sched.now, "event queue returned past event");
            self.sched.now = t;
            self.processed += 1;
            handler(t, ev, &mut self.sched);
        }
        if horizon > self.sched.now {
            self.sched.now = horizon;
        }
        false
    }

    /// Restores the clock and processed-event counter from a
    /// checkpoint. Only meaningful together with re-inserting the
    /// saved queue entries (see
    /// [`SnapshotQueue`](crate::queue::SnapshotQueue)); the clock may
    /// only move forward — rewinding a live simulation would violate
    /// causality, so past times are ignored in favor of the current
    /// clock.
    pub fn restore_progress(&mut self, now: SimTime, processed: u64) {
        if now > self.sched.now {
            self.sched.now = now;
        }
        self.processed = processed;
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKey, ShardedEventQueue};

    #[test]
    fn processes_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), 5);
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(3), 3);
        let mut order = Vec::new();
        sim.run_until(SimTime::from_secs(100), |_, e, _| order.push(e));
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(sim.events_processed(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10), "at");
        sim.schedule_at(SimTime::from_micros(10_000_001), "after");
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(10), |_, e, _| seen.push(e));
        assert_eq!(seen, vec!["at"]);
        // The late event survives for a later run.
        sim.run_until(SimTime::from_secs(11), |_, e, _| seen.push(e));
        assert_eq!(seen, vec!["at", "after"]);
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run_until(SimTime::from_secs(100), |now, depth, sched| {
            count += 1;
            if depth < 5 {
                sched.schedule_at(now + SimTime::SECOND, depth + 1);
            }
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn same_time_cascade_runs_immediately() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(1), false);
        let mut log = Vec::new();
        sim.run_until(SimTime::from_secs(1), |now, is_child, sched| {
            log.push((now, is_child));
            if !is_child {
                sched.schedule_at(now, true); // same instant
            }
        });
        assert_eq!(
            log,
            vec![
                (SimTime::from_secs(1), false),
                (SimTime::from_secs(1), true)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.run_until(SimTime::from_secs(10), |_, (), sched| {
            sched.schedule_at(SimTime::from_secs(1), ());
        });
    }

    #[test]
    fn clock_advances_to_horizon_without_events() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.run_until(SimTime::from_secs(42), |_, (), _| {});
        assert_eq!(sim.now(), SimTime::from_secs(42));
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn pending_count_visible_to_handler() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::ZERO, ());
        let mut observed = None;
        sim.run_until(SimTime::from_secs(1), |_, (), sched| {
            sched.schedule_in(SimTime::from_secs(10), ());
            sched.schedule_in(SimTime::from_secs(20), ());
            observed = Some(sched.pending());
        });
        assert_eq!(observed, Some(2));
    }

    /// The full drive loop behaves identically over a sharded queue:
    /// a self-rescheduling workload with same-instant cascades and
    /// windowed horizons produces the same trace either way.
    #[test]
    fn sharded_simulation_matches_sequential_trace() {
        fn route(ev: &u32) -> EventKey {
            if *ev % 4 == 0 {
                EventKey::global(0)
            } else {
                EventKey::node(*ev % 7, 1)
            }
        }
        fn drive<Q: Queue<u32>>(mut sim: Simulation<u32, Q>) -> Vec<(u64, u32)> {
            for i in 0..10u32 {
                sim.schedule_at(SimTime::from_micros(u64::from(i % 3)), i);
            }
            let mut log = Vec::new();
            // Windowed horizons, mirroring the sharded runner's loop.
            for window in 1..=6u64 {
                sim.run_until(SimTime::from_micros(window * 2), |now, ev, sched| {
                    log.push((now.as_micros(), ev));
                    if ev < 40 {
                        sched.schedule_in(SimTime::from_micros(u64::from(ev % 5)), ev + 10);
                    }
                });
            }
            log
        }
        let seq = drive(Simulation::<u32>::new());
        let sh = drive(Simulation::with_queue(ShardedEventQueue::new(
            3,
            route as fn(&u32) -> EventKey,
        )));
        assert_eq!(seq, sh);
        assert!(!seq.is_empty());
    }

    /// A stop between events leaves the clock at the last processed
    /// event (not the horizon), and resuming the same simulation runs
    /// the remainder identically.
    #[test]
    fn stoppable_run_suspends_between_events() {
        let mut sim = Simulation::new();
        for i in 0..6u32 {
            sim.schedule_at(SimTime::from_secs(u64::from(i)), i);
        }
        let mut seen = Vec::new();
        let stopped = sim.run_until_stoppable(
            SimTime::from_secs(100),
            |_, e, _| seen.push(e),
            |processed| processed == 3,
        );
        assert!(stopped);
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(sim.events_processed(), 3);
        // Clock parked at the last processed event, not the horizon.
        assert_eq!(sim.now(), SimTime::from_secs(2));
        let stopped =
            sim.run_until_stoppable(SimTime::from_secs(100), |_, e, _| seen.push(e), |_| false);
        assert!(!stopped);
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    /// Restoring progress onto a fresh simulation replays the clock
    /// and counter; rewinding is refused.
    #[test]
    fn restore_progress_moves_forward_only() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.restore_progress(SimTime::from_secs(7), 42);
        assert_eq!(sim.now(), SimTime::from_secs(7));
        assert_eq!(sim.events_processed(), 42);
        sim.restore_progress(SimTime::from_secs(3), 50);
        assert_eq!(sim.now(), SimTime::from_secs(7), "clock must not rewind");
        assert_eq!(sim.events_processed(), 50);
    }

    /// `queue_mut` exposes the queue for owner-map maintenance between
    /// windows without disturbing the clock or processed count.
    #[test]
    fn queue_mut_allows_owner_reassignment_between_windows() {
        let mut sim = Simulation::with_queue(ShardedEventQueue::new(
            2,
            (|_: &u8| EventKey::node(0, 0)) as fn(&u8) -> EventKey,
        ));
        sim.schedule_at(SimTime::from_secs(1), 1u8);
        sim.run_until(SimTime::ZERO, |_, _, _| {});
        sim.queue_mut().assign_owners(&[1]);
        sim.schedule_at(SimTime::from_secs(1), 2u8);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(2), |_, e, _| seen.push(e));
        assert_eq!(seen, vec![1, 2]);
    }
}
