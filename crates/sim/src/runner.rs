//! The simulation run loop.

use crate::{EventQueue, SimTime};

/// The scheduling interface handed to event handlers while the
/// simulation runs: the current time plus the ability to schedule
/// further events.
///
/// Handlers receive `&mut Scheduler<E>` rather than the whole
/// [`Simulation`] so they cannot re-enter the run loop.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(capacity),
        }
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current time) — a
    /// causality violation that would silently corrupt a simulation if
    /// allowed through.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A discrete-event simulation: an event queue plus a clock, driven to
/// completion by [`Simulation::run_until`].
///
/// The event type `E` is chosen by the embedding application (for the
/// MANET simulator it is hello broadcasts, contention deadlines, and
/// metric samplers).
///
/// # Examples
///
/// A self-rescheduling periodic event:
///
/// ```
/// use mobic_sim::{Simulation, SimTime};
///
/// let mut sim = Simulation::new();
/// sim.schedule_at(SimTime::ZERO, ());
/// let mut ticks = 0;
/// sim.run_until(SimTime::from_secs(10), |_, (), sched| {
///     ticks += 1;
///     sched.schedule_in(SimTime::from_secs(2), ());
/// });
/// // t = 0, 2, 4, 6, 8, 10 (events at exactly the horizon still fire).
/// assert_eq!(ticks, 6);
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    sched: Scheduler<E>,
    processed: u64,
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Simulation {
            sched: Scheduler::new(),
            processed: 0,
        }
    }

    /// Like [`new`](Self::new), but with the event queue pre-sized for
    /// `capacity` concurrently pending events. A self-rescheduling
    /// workload whose steady-state queue depth is known up front (one
    /// hello per node plus a sampler, for the MANET runner) never
    /// reallocates the queue mid-run.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Simulation {
            sched: Scheduler::with_capacity(capacity),
            processed: 0,
        }
    }

    /// Schedules an event before the run starts (or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.sched.schedule_at(at, event);
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Runs the simulation until the queue drains or the next event
    /// lies strictly after `horizon`. Events scheduled exactly at
    /// `horizon` are processed. The clock is left at the later of its
    /// current value and `horizon`.
    ///
    /// The handler receives `(now, event, &mut Scheduler)` and may
    /// schedule further events.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut Scheduler<E>),
    {
        while let Some(t) = self.sched.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (t, ev) = self.sched.queue.pop().expect("peeked event must exist");
            debug_assert!(t >= self.sched.now, "event queue returned past event");
            self.sched.now = t;
            self.processed += 1;
            handler(t, ev, &mut self.sched);
        }
        if horizon > self.sched.now {
            self.sched.now = horizon;
        }
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), 5);
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(3), 3);
        let mut order = Vec::new();
        sim.run_until(SimTime::from_secs(100), |_, e, _| order.push(e));
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(sim.events_processed(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10), "at");
        sim.schedule_at(SimTime::from_micros(10_000_001), "after");
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(10), |_, e, _| seen.push(e));
        assert_eq!(seen, vec!["at"]);
        // The late event survives for a later run.
        sim.run_until(SimTime::from_secs(11), |_, e, _| seen.push(e));
        assert_eq!(seen, vec!["at", "after"]);
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run_until(SimTime::from_secs(100), |now, depth, sched| {
            count += 1;
            if depth < 5 {
                sched.schedule_at(now + SimTime::SECOND, depth + 1);
            }
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn same_time_cascade_runs_immediately() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(1), false);
        let mut log = Vec::new();
        sim.run_until(SimTime::from_secs(1), |now, is_child, sched| {
            log.push((now, is_child));
            if !is_child {
                sched.schedule_at(now, true); // same instant
            }
        });
        assert_eq!(
            log,
            vec![
                (SimTime::from_secs(1), false),
                (SimTime::from_secs(1), true)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.run_until(SimTime::from_secs(10), |_, (), sched| {
            sched.schedule_at(SimTime::from_secs(1), ());
        });
    }

    #[test]
    fn clock_advances_to_horizon_without_events() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.run_until(SimTime::from_secs(42), |_, (), _| {});
        assert_eq!(sim.now(), SimTime::from_secs(42));
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn pending_count_visible_to_handler() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::ZERO, ());
        let mut observed = None;
        sim.run_until(SimTime::from_secs(1), |_, (), sched| {
            sched.schedule_in(SimTime::from_secs(10), ());
            sched.schedule_in(SimTime::from_secs(20), ());
            observed = Some(sched.pending());
        });
        assert_eq!(observed, Some(2));
    }
}
