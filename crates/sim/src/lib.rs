//! Deterministic discrete-event simulation engine for the MOBIC
//! reproduction.
//!
//! This crate plays the role that the ns-2 scheduler played for the
//! original paper: it provides
//!
//! * [`SimTime`] — an exact, integer-microsecond simulation clock;
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking;
//! * [`CalendarQueue`] — a bucketed calendar queue with O(1) amortized
//!   push/pop for near-periodic workloads, popping in exactly the same
//!   order (see the [`calendar`] module docs for the argument);
//! * [`ShardedEventQueue`] — per-shard event storage behind the same
//!   [`Queue`] interface, whose merged pop order is provably identical
//!   to [`EventQueue`] (see its docs for the tie-break analysis); each
//!   shard is an [`EntryStore`] — a binary heap by default, or a
//!   [`CalendarStore`] via [`ShardedCalendarQueue`];
//! * [`Simulation`] — a run loop driving a user-supplied handler;
//! * [`rng`] — seeded, labeled random-number streams so every component
//!   (placement, mobility, loss, …) draws from an independent stream
//!   derived from one master seed, making whole runs reproducible.
//!
//! # Determinism contract
//!
//! Given the same event insertions and the same seeds, a simulation is
//! bit-for-bit reproducible: the queue breaks ties by insertion order,
//! the clock is integer arithmetic, and the RNG streams are a fixed
//! algorithm ([`rand_chacha::ChaCha12Rng`]) independent of `rand`'s
//! unstable `StdRng` choice. The contract is queue-shape independent:
//! every [`Queue`] implementation must pop identical push sequences in
//! an identical order, so swapping [`EventQueue`] for
//! [`ShardedEventQueue`] cannot change a simulation's results.
//!
//! # Examples
//!
//! ```
//! use mobic_sim::{Simulation, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
//! sim.schedule_at(SimTime::from_secs(2), Ev::Tick(2));
//! let mut seen = Vec::new();
//! sim.run_until(SimTime::from_secs(10), |now, ev, _sched| {
//!     let Ev::Tick(n) = ev;
//!     seen.push((now.as_secs_f64(), n));
//! });
//! assert_eq!(seen, vec![(1.0, 1), (2.0, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
mod queue;
pub mod rng;
mod runner;
mod time;

pub use calendar::{CalendarQueue, CalendarStore, ShardedCalendarQueue};
pub use queue::{Entry, EntryStore, EventKey, EventQueue, Queue, ShardedEventQueue, SnapshotQueue};
pub use runner::{Scheduler, Simulation};
pub use time::SimTime;
