//! The simulation clock.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant (or duration) on the simulation clock, stored as integer
/// microseconds since the start of the run.
///
/// Microsecond resolution makes every quantity in the paper exact: the
/// Broadcast Interval (2 s), Timeout Period (3 s), Cluster Contention
/// Interval (4 s) and the 900 s run length are all integral multiples,
/// so no floating-point drift can reorder events. A `u64` of
/// microseconds covers ~584 000 years of simulated time.
///
/// `SimTime` doubles as a duration type (like a bare integer would);
/// arithmetic is checked in debug builds and saturating semantics are
/// available via [`SimTime::saturating_sub`].
///
/// # Examples
///
/// ```
/// use mobic_sim::SimTime;
///
/// let bi = SimTime::from_secs_f64(2.0);
/// let t = SimTime::ZERO + bi * 3;
/// assert_eq!(t.as_secs_f64(), 6.0);
/// assert!(t > bi);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One microsecond.
    pub const MICROSECOND: SimTime = SimTime(1);

    /// One millisecond.
    pub const MILLISECOND: SimTime = SimTime(1_000);

    /// One second.
    pub const SECOND: SimTime = SimTime(1_000_000);

    /// Creates a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "sim time must be finite and non-negative, got {s}"
        );
        let us = (s * 1e6).round();
        assert!(us <= u64::MAX as f64, "sim time overflow: {s} s");
        SimTime(us as u64)
    }

    /// The value in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Subtraction clamping at zero instead of panicking.
    ///
    /// # Examples
    ///
    /// ```
    /// use mobic_sim::SimTime;
    /// let a = SimTime::from_secs(1);
    /// let b = SimTime::from_secs(3);
    /// assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    /// ```
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// `true` for the zero instant/duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ratio `self / other` as a float (e.g. progress through a
    /// leg). Returns `0.0` when `other` is zero.
    #[must_use]
    pub fn ratio(self, other: SimTime) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("sim time overflow in addition"),
        )
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("sim time underflow in subtraction"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_mul(rhs)
                .expect("sim time overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2_000));
        assert_eq!(SimTime::from_secs_f64(2.0), SimTime::from_secs(2));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_micros(500_000));
    }

    #[test]
    fn rounding_to_microseconds() {
        assert_eq!(SimTime::from_secs_f64(1e-7), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(6e-7), SimTime::MICROSECOND);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b * 5, SimTime::from_secs(5));
        assert_eq!(a / 3, SimTime::from_secs(1));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(4));
        c -= SimTime::from_secs(4);
        assert_eq!(c, SimTime::ZERO);
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            SimTime::from_secs(1).saturating_sub(SimTime::from_secs(5)),
            SimTime::ZERO
        );
        assert_eq!(SimTime::MAX.checked_add(SimTime::MICROSECOND), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimTime::SECOND),
            Some(SimTime::SECOND)
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(900));
    }

    #[test]
    fn ratio() {
        assert_eq!(SimTime::from_secs(1).ratio(SimTime::from_secs(4)), 0.25);
        assert_eq!(SimTime::from_secs(1).ratio(SimTime::ZERO), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn paper_constants_are_exact() {
        // BI=2s, TP=3s, CCI=4s, S=900s must all be exact multiples of 1us.
        for (secs, micros) in [
            (2.0, 2_000_000),
            (3.0, 3_000_000),
            (4.0, 4_000_000),
            (900.0, 900_000_000),
        ] {
            assert_eq!(SimTime::from_secs_f64(secs).as_micros(), micros);
        }
    }
}
