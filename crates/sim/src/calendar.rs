//! Calendar-queue event storage: a bucketed future-event list with
//! O(1) amortized enqueue/dequeue for near-periodic workloads.
//!
//! The hello traffic that dominates a MANET run is near-periodic by
//! construction — every node reschedules itself one broadcast interval
//! ahead (or a bounded fraction of it, under adaptive pacing) — which
//! is the textbook case for a calendar queue (Brown 1988): hash each
//! event into a bucket by `time / width`, keep a cursor on the bucket
//! whose time window is current, and both ends of the queue touch only
//! a handful of entries per operation instead of the `log n` sift of a
//! binary heap.
//!
//! # Ordering contract
//!
//! [`CalendarQueue`] implements [`Queue`] and must pop the exact
//! `(time, seq)` order of [`EventQueue`](crate::EventQueue): earliest
//! time first, FIFO (insertion order) within a time. The structure
//! guarantees it because
//!
//! * slots partition time: every entry in slot `s` has a strictly
//!   earlier timestamp than every entry in slot `s + 1`, so scanning
//!   slots in ascending order visits timestamps in ascending order;
//! * within the due slot the scan selects the minimum `(time, seq)`
//!   key exactly, over the whole bucket; and
//! * entries beyond the current calendar year (the overflow day-list)
//!   are compared by the same key before any bucketed candidate is
//!   accepted.
//!
//! Bucket *placement* (width, bucket count, resize policy) can
//! therefore change constant factors only, never pop order — the same
//! argument that makes shard placement invisible for
//! [`ShardedEventQueue`](crate::ShardedEventQueue).

use crate::queue::{Entry, EntryStore, Queue};
use crate::SimTime;

/// Fallback bucket width (1 ms) when no period hint is available.
const DEFAULT_WIDTH_US: u64 = 1_000;

/// Minimum bucket count; also the floor the shrink policy stops at.
const MIN_BUCKETS: usize = 8;

/// Where [`CalendarStore::locate_min`] found the minimum entry.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// `(bucket index, index within the bucket)`.
    Bucket(usize, usize),
    /// The cached overflow minimum.
    Overflow,
}

/// Bucketed storage for [`Entry`] values: the calendar proper.
///
/// One of these backs a whole [`CalendarQueue`]; as an [`EntryStore`]
/// it can also back each shard of a
/// [`ShardedEventQueue`](crate::ShardedEventQueue) (see
/// [`ShardedCalendarQueue`]).
///
/// * **Buckets.** `buckets[slot & (n - 1)]` holds the entries whose
///   slot (`time_µs / width_µs`) is congruent modulo the bucket count
///   `n` (a power of two). Entries within a bucket are unsorted; the
///   due-slot scan finds the exact minimum key.
/// * **Lazy rotation.** A `scan_slot` cursor remembers where the last
///   pop left off; each pop walks forward at most one calendar year
///   (`n` slots) before falling back to a direct search, and jumps
///   straight to the popped entry's slot, so empty stretches are
///   skipped without bookkeeping on push.
/// * **Overflow day-list.** Entries more than one year ahead of the
///   cursor would alias into in-year buckets and be rescanned every
///   lap; they go to a side list instead, with a cached minimum that
///   every pop compares against.
/// * **Resize.** When the population drifts past 2× the bucket count
///   the calendar doubles; when it drops below a quarter it halves
///   (down to [`MIN_BUCKETS`]). The width is fixed at construction —
///   for the near-periodic MANET workload the event *period* does not
///   drift, only the population does.
#[derive(Debug, Clone)]
pub struct CalendarStore<E> {
    /// Power-of-two bucket array; index = `slot & (buckets.len()-1)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in microseconds (fixed at construction).
    width_us: u64,
    /// Slot the next pop starts scanning from. Invariant: every stored
    /// entry has `slot >= scan_slot` (push rewinds the cursor when an
    /// earlier entry arrives).
    scan_slot: u64,
    /// Far-future entries (slot ≥ one year past the cursor at push
    /// time), unordered.
    overflow: Vec<Entry<E>>,
    /// Cached minimum of `overflow`: `(time, seq, index)`.
    overflow_min: Option<(SimTime, u64, usize)>,
    len: usize,
}

impl<E> CalendarStore<E> {
    /// Creates a calendar pre-sized for about `cap` concurrently
    /// pending entries, with the bucket width derived from
    /// `period_hint` (the expected event period — `bi_s` for the MANET
    /// runner).
    ///
    /// The bucket count is `cap` rounded up to a power of two (at
    /// least [`MIN_BUCKETS`]) and the width is chosen so one calendar
    /// year spans **two** periods: a self-rescheduling event lands
    /// mid-year instead of exactly one year ahead, so steady-state
    /// traffic never touches the overflow list. Each bucket is
    /// pre-reserved for its expected share of `cap` — after warm-up
    /// the hot path performs no allocation at all.
    #[must_use]
    pub fn with_profile(cap: usize, period_hint: SimTime) -> Self {
        let n_buckets = cap.max(MIN_BUCKETS).next_power_of_two();
        let hint_us = period_hint.as_micros();
        let width_us = if hint_us == 0 {
            DEFAULT_WIDTH_US
        } else {
            (hint_us.saturating_mul(2) / n_buckets as u64).max(1)
        };
        let per_bucket = 2 * cap / n_buckets + 2;
        CalendarStore {
            buckets: (0..n_buckets)
                .map(|_| Vec::with_capacity(per_bucket))
                .collect(),
            width_us,
            scan_slot: 0,
            overflow: Vec::with_capacity(cap / 4 + 1),
            overflow_min: None,
            len: 0,
        }
    }

    /// Number of buckets (power of two); exposed for resize tests.
    #[must_use]
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket width in microseconds; exposed for derivation tests.
    #[must_use]
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// Number of entries currently on the overflow day-list.
    #[must_use]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    #[inline]
    fn slot_of(&self, time: SimTime) -> u64 {
        time.as_micros() / self.width_us
    }

    // lint:hot-path — calendar push/pop: bucket insert, due-slot scan,
    // and overflow comparison must not allocate (bucket growth is
    // amortized into warm-up; structural resizes happen in `rebuild`,
    // outside this region).

    #[inline]
    fn insert_entry(&mut self, entry: Entry<E>) {
        let slot = self.slot_of(entry.time);
        // An entry behind the cursor would never be scanned: rewind.
        // Safe for everything already stored (their slots only ever
        // exceed the new, smaller cursor).
        if slot < self.scan_slot {
            self.scan_slot = slot;
        }
        let n = self.buckets.len() as u64;
        if slot - self.scan_slot >= n {
            // More than a calendar year ahead: day-list, with the
            // cached minimum kept current.
            let key = (entry.time, entry.seq);
            let idx = self.overflow.len();
            if self.overflow_min.map_or(true, |(t, s, _)| key < (t, s)) {
                self.overflow_min = Some((entry.time, entry.seq, idx));
            }
            self.overflow.push(entry);
        } else {
            let mask = n - 1;
            self.buckets[(slot & mask) as usize].push(entry);
        }
        self.len += 1;
    }

    /// Finds the minimum `(time, seq)` key and where it lives, without
    /// mutating anything. Walks at most one calendar year from the
    /// cursor, comparing the overflow minimum at every step, then
    /// falls back to a direct search.
    fn locate_min(&self) -> Option<((SimTime, u64), Place)> {
        if self.len == 0 {
            return None;
        }
        let w = self.width_us;
        let mask = self.buckets.len() as u64 - 1;
        let ov = self.overflow_min.map(|(t, s, _)| (t, s));
        let mut slot = self.scan_slot;
        for _ in 0..self.buckets.len() {
            if let Some((t, s)) = ov {
                // Entries in earlier slots have strictly earlier
                // times, so an overflow entry due before this slot
                // beats every remaining bucketed entry.
                if t.as_micros() / w < slot {
                    return Some(((t, s), Place::Overflow));
                }
            }
            let b = (slot & mask) as usize;
            let mut best: Option<((SimTime, u64), usize)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                // Exact due test: aliased entries from later years
                // share the bucket but not the slot.
                if e.time.as_micros() / w == slot {
                    let key = e.key();
                    if best.map_or(true, |(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                }
            }
            if let Some((key, i)) = best {
                if let Some((t, s)) = ov {
                    if (t, s) < key {
                        return Some(((t, s), Place::Overflow));
                    }
                }
                return Some((key, Place::Bucket(b, i)));
            }
            if let Some((t, s)) = ov {
                if t.as_micros() / w == slot {
                    return Some(((t, s), Place::Overflow));
                }
            }
            slot = slot.saturating_add(1);
        }
        // A full lap found nothing due: the queue is sparse (every
        // bucketed entry is beyond the current year). Search directly.
        self.direct_min()
    }

    /// Global minimum over every bucket and the overflow list — the
    /// sparse-queue fallback after an empty lap.
    fn direct_min(&self) -> Option<((SimTime, u64), Place)> {
        let mut best: Option<((SimTime, u64), Place)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                let key = e.key();
                if best.map_or(true, |(bk, _)| key < bk) {
                    best = Some((key, Place::Bucket(b, i)));
                }
            }
        }
        if let Some((t, s, _)) = self.overflow_min {
            if best.map_or(true, |(bk, _)| (t, s) < bk) {
                best = Some(((t, s), Place::Overflow));
            }
        }
        best
    }

    fn take_min_entry(&mut self) -> Option<Entry<E>> {
        let ((time, _), place) = self.locate_min()?;
        // The popped entry is the global minimum, so no remaining
        // entry has an earlier slot: jump the cursor there. This is
        // the lazy rotation — empty stretches are never revisited.
        self.scan_slot = self.slot_of(time);
        self.len -= 1;
        Some(match place {
            Place::Bucket(b, i) => self.buckets[b].swap_remove(i),
            Place::Overflow => {
                let (_, _, i) = self.overflow_min.take().unwrap_or((time, 0, 0));
                let e = self.overflow.swap_remove(i);
                self.refresh_overflow_min();
                e
            }
        })
    }

    /// Recomputes the cached overflow minimum after a removal.
    fn refresh_overflow_min(&mut self) {
        self.overflow_min = None;
        for (i, e) in self.overflow.iter().enumerate() {
            let key = e.key();
            if self.overflow_min.map_or(true, |(t, s, _)| key < (t, s)) {
                self.overflow_min = Some((e.time, e.seq, i));
            }
        }
    }

    // lint:end-hot-path

    /// Grows or shrinks the bucket array when the population drifts
    /// past the load-factor band `[n/4, 2n]`. Called outside the
    /// alloc-free region: a steady-state population never drifts, so
    /// resizes are confined to warm-up and tear-down.
    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        if self.len > 2 * n {
            self.rebuild(n * 2);
        } else if self.len < n / 4 && n > MIN_BUCKETS {
            self.rebuild(n / 2);
        }
    }

    /// Redistributes every entry over `new_n` buckets (power of two).
    /// The width is unchanged, so slots — and therefore pop order —
    /// are unchanged; only the aliasing pattern and the overflow
    /// horizon move.
    fn rebuild(&mut self, new_n: usize) {
        let mut pending: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            pending.append(bucket);
        }
        pending.append(&mut self.overflow);
        self.buckets = (0..new_n)
            .map(|_| Vec::with_capacity(2 * self.len / new_n + 2))
            .collect();
        self.overflow_min = None;
        self.len = 0;
        for entry in pending {
            self.insert_entry(entry);
        }
    }
}

impl<E> EntryStore<E> for CalendarStore<E> {
    fn new_store(cap: usize, period_hint: SimTime) -> Self {
        CalendarStore::with_profile(cap, period_hint)
    }

    fn insert(&mut self, entry: Entry<E>) {
        self.insert_entry(entry);
        self.maybe_resize();
    }

    fn min_key(&self) -> Option<(SimTime, u64)> {
        self.locate_min().map(|(key, _)| key)
    }

    fn take_min(&mut self) -> Option<Entry<E>> {
        let e = self.take_min_entry();
        self.maybe_resize();
        e
    }

    fn store_len(&self) -> usize {
        self.len
    }
}

/// A calendar-queue future-event list: drop-in alternative to
/// [`EventQueue`](crate::EventQueue) with O(1) amortized push/pop for
/// near-periodic workloads, and an identical pop order.
///
/// Selected by the scenario runner's `scheduler: calendar` knob; see
/// the [module docs](self) for the ordering argument.
///
/// # Examples
///
/// ```
/// use mobic_sim::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new(SimTime::from_secs(2));
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    store: CalendarStore<E>,
    next_seq: u64,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the bucket width derived from
    /// `period_hint` (the expected event period) and a default-sized
    /// calendar.
    #[must_use]
    pub fn new(period_hint: SimTime) -> Self {
        Self::with_profile(0, period_hint)
    }

    /// Creates an empty queue pre-sized for `cap` concurrently pending
    /// events — see [`CalendarStore::with_profile`] for the bucket
    /// count and width derivation.
    #[must_use]
    pub fn with_profile(cap: usize, period_hint: SimTime) -> Self {
        CalendarQueue {
            store: CalendarStore::with_profile(cap, period_hint),
            next_seq: 0,
        }
    }

    /// The backing calendar, for structure tests.
    #[must_use]
    pub fn store(&self) -> &CalendarStore<E> {
        &self.store
    }

    // lint:hot-path — scheduler enqueue/dequeue.

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.store.insert_entry(Entry { time, seq, event });
        self.store.maybe_resize();
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.store.take_min_entry();
        self.store.maybe_resize();
        e.map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.store.locate_min().map(|((t, _), _)| t)
    }

    // lint:end-hot-path

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.len == 0
    }
}

impl<E> Queue<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, event: E) {
        CalendarQueue::push(self, time, event);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }

    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
}

impl<E> crate::queue::SnapshotQueue<E> for CalendarQueue<E> {
    fn drain_canonical(&mut self) -> Vec<(SimTime, u64, E)> {
        // Repeated take-min yields ascending `(time, seq)` directly —
        // the due-slot scan plus overflow comparison always selects
        // the exact global minimum (see the module docs).
        let mut out = Vec::with_capacity(self.store.len);
        while let Some(e) = self.store.take_min_entry() {
            out.push((e.time, e.seq, e.event));
        }
        self.store.maybe_resize();
        out
    }

    fn restore_entry(&mut self, time: SimTime, seq: u64, event: E) {
        self.store.insert_entry(Entry { time, seq, event });
        self.store.maybe_resize();
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn set_next_seq(&mut self, next: u64) {
        self.next_seq = next;
    }
}

/// A [`ShardedEventQueue`](crate::ShardedEventQueue) whose shards are
/// [`CalendarStore`]s — the `engine: sharded` × `scheduler: calendar`
/// composition. Construct with
/// [`ShardedEventQueue::with_store`](crate::ShardedEventQueue::with_store).
pub type ShardedCalendarQueue<E, R> = crate::ShardedEventQueue<E, R, CalendarStore<E>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    /// Mirror every push/pop against the reference heap queue and
    /// assert identical pops.
    fn assert_matches_reference(
        q: &mut CalendarQueue<u64>,
        script: impl IntoIterator<Item = (u64, bool)>,
    ) {
        let mut reference = EventQueue::new();
        for (i, (t, pop_now)) in script.into_iter().enumerate() {
            let time = SimTime::from_micros(t);
            q.push(time, i as u64);
            reference.push(time, i as u64);
            assert_eq!(q.peek_time(), reference.peek_time());
            if pop_now {
                assert_eq!(q.pop(), reference.pop());
            }
        }
        loop {
            assert_eq!(q.peek_time(), reference.peek_time());
            let a = q.pop();
            assert_eq!(a, reference.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn fifo_within_same_instant_burst() {
        // Everything at one instant: pure FIFO, all in one bucket.
        let mut q = CalendarQueue::with_profile(16, SimTime::from_secs(2));
        assert_matches_reference(&mut q, (0..200).map(|_| (1_000_000, false)));
    }

    #[test]
    fn near_periodic_workload_stays_in_year() {
        // The MANET shape: `cap` nodes rescheduling one period ahead.
        let period = SimTime::from_secs(2);
        let mut q = CalendarQueue::with_profile(32, period);
        let mut reference = EventQueue::new();
        for i in 0..32u64 {
            let t = SimTime::from_micros(i * 62_500); // spread over one period
            q.push(t, i);
            reference.push(t, i);
        }
        for round in 0..200u64 {
            let (t, ev) = q.pop().expect("queue drained early");
            assert_eq!(reference.pop(), Some((t, ev)));
            if round < 168 {
                q.push(t + period, ev);
                reference.push(t + period, ev);
            }
            // Steady-state reschedules land mid-year, not on the
            // overflow day-list.
            assert_eq!(q.store().overflow_len(), 0);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_take_the_overflow_day_list() {
        let mut q = CalendarQueue::with_profile(8, SimTime::from_secs(2));
        let year_us = q.store().width_us() * q.store().n_buckets() as u64;
        let mut reference = EventQueue::new();
        // A near event plus events far beyond the first year.
        for (i, t) in [0u64, 10 * year_us, 3 * year_us, 10 * year_us, year_us + 1]
            .into_iter()
            .enumerate()
        {
            q.push(SimTime::from_micros(t), i as u64);
            reference.push(SimTime::from_micros(t), i as u64);
        }
        assert!(
            q.store().overflow_len() >= 3,
            "{:?}",
            q.store().overflow_len()
        );
        loop {
            let a = q.pop();
            assert_eq!(a, reference.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn overflow_entry_wins_ties_against_buckets() {
        // FIFO must hold when overflow entries share an instant with a
        // bucketed one: the overflow pair was pushed first, so it pops
        // first even though the bucketed entry's scan finds it "due".
        let mut q = CalendarQueue::with_profile(8, SimTime::from_micros(1000));
        let year_us = q.store().width_us() * q.store().n_buckets() as u64;
        assert_eq!(year_us, 2000);
        let far = SimTime::from_micros(2 * year_us);
        let mut reference = EventQueue::new();
        for (i, t) in [far, SimTime::ZERO, far, far + SimTime::MICROSECOND]
            .into_iter()
            .enumerate()
        {
            q.push(t, i as u64);
            reference.push(t, i as u64);
        }
        assert_eq!(q.store().overflow_len(), 3);
        // Drain the near event and the first `far` one; the cursor
        // jumps to `far`'s slot, so a fresh push at the same instant
        // now lands in a bucket while two overflow entries remain.
        assert_eq!(q.pop(), reference.pop());
        assert_eq!(q.pop(), reference.pop());
        q.push(far, 99);
        reference.push(far, 99);
        assert!(q.store().overflow_len() >= 1);
        loop {
            let a = q.pop();
            assert_eq!(a, reference.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rewound_cursor_finds_bucketed_far_entries_by_direct_search() {
        // A cursor rewind can leave a *bucketed* entry more than one
        // year ahead of the cursor; the empty-lap fallback must find
        // it by direct search.
        let mut q = CalendarQueue::with_profile(8, SimTime::from_micros(1000));
        // width 250 µs, 8 buckets → year = 2000 µs.
        q.push(SimTime::from_micros(4000), 0u64); // slot 16 → overflow
        assert_eq!(q.pop(), Some((SimTime::from_micros(4000), 0)));
        // Cursor now at slot 16: slot 20 is within the year → bucket.
        q.push(SimTime::from_micros(5000), 1u64);
        assert_eq!(q.store().overflow_len(), 0);
        // Rewind the cursor to slot 2; entry 1 is now 18 slots ahead.
        q.push(SimTime::from_micros(500), 2u64);
        assert_eq!(q.pop(), Some((SimTime::from_micros(500), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5000), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn resize_boundaries_preserve_order() {
        // Push far past 2× the initial bucket count (grow), then drain
        // to near-empty (shrink), asserting order throughout.
        let mut q = CalendarQueue::with_profile(0, SimTime::from_millis(4));
        assert_eq!(q.store().n_buckets(), MIN_BUCKETS);
        let mut x: u64 = 7;
        let script: Vec<(u64, bool)> = (0..4000)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 100_000, i > 3500 && x % 2 == 0)
            })
            .collect();
        assert_matches_reference(&mut q, script);
        // Grow happened…
        assert!(q.store().n_buckets() > MIN_BUCKETS);
        // …and draining shrank the calendar back down.
        assert_eq!(q.store().n_buckets(), MIN_BUCKETS);
    }

    #[test]
    fn earlier_push_rewinds_the_cursor() {
        let mut q = CalendarQueue::new(SimTime::from_millis(1));
        q.push(SimTime::from_secs(50), 1u64);
        assert_eq!(q.pop(), Some((SimTime::from_secs(50), 1)));
        // The cursor now sits at t = 50 s; a push behind it must still
        // be found (the runner never does this, but the queue contract
        // does not forbid it).
        q.push(SimTime::from_secs(10), 2u64);
        q.push(SimTime::from_secs(60), 3u64);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(60), 3)));
    }

    #[test]
    fn sparse_queue_uses_direct_search() {
        // Huge gaps between events: the one-lap scan gives up and the
        // direct search must find the minimum (and jump the cursor).
        let mut q = CalendarQueue::with_profile(4, SimTime::from_micros(16));
        let mut reference = EventQueue::new();
        for (i, t) in [3_600_000_000u64, 1_000_000, 7_200_000_000]
            .iter()
            .enumerate()
        {
            q.push(SimTime::from_micros(*t), i as u64);
            reference.push(SimTime::from_micros(*t), i as u64);
        }
        loop {
            let a = q.pop();
            assert_eq!(a, reference.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn width_derivation_spans_two_periods() {
        let q: CalendarQueue<()> = CalendarQueue::with_profile(40, SimTime::from_secs(2));
        let store = q.store();
        assert_eq!(store.n_buckets(), 64);
        // One calendar year = n_buckets × width ≈ 2 × the period.
        assert_eq!(store.width_us() * store.n_buckets() as u64, 4_000_000);
        // No hint: fallback width.
        let d: CalendarQueue<()> = CalendarQueue::new(SimTime::ZERO);
        assert_eq!(d.store().width_us(), DEFAULT_WIDTH_US);
    }

    /// LCG-scripted workload with the shapes that stress a calendar:
    /// same-instant bursts (heavy collisions in a tiny time domain),
    /// far-future spikes (overflow day-list + direct search), and
    /// interleaved pops (cursor motion, resize on drain).
    fn lcg_script(seed: u64, len: usize) -> Vec<(u64, bool)> {
        let mut x = seed | 1;
        (0..len)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let base = (x >> 33) % 50;
                let t = match x % 7 {
                    0 => base * 1_000_000_000, // far-future spike
                    1 | 2 => base * 1_000,
                    _ => base, // burst domain
                };
                (t, x % 3 == 0 && i > 2)
            })
            .collect()
    }

    proptest::proptest! {
        /// The satellite property: for any seed, workload length, and
        /// calendar profile (including degenerate cap 0 / no hint),
        /// `CalendarQueue` pops the exact `EventQueue` order.
        #[test]
        fn prop_calendar_pop_order_matches_event_queue(
            seed in proptest::prelude::any::<u64>(),
            len in 1usize..400,
            cap in 0usize..80,
            hint_us in 0u64..5_000,
        ) {
            let mut q = CalendarQueue::with_profile(cap, SimTime::from_micros(hint_us));
            assert_matches_reference(&mut q, lcg_script(seed, len));
        }
    }

    #[test]
    fn len_empty_and_peek_track_the_reference() {
        let mut q = CalendarQueue::new(SimTime::from_secs(1));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), 0u64);
        q.push(SimTime::from_secs(2), 1u64);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 1)));
        assert_eq!(q.len(), 1);
    }
}
