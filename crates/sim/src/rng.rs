//! Seeded, labeled random-number streams.
//!
//! A simulation run must be a pure function of `(config, master_seed)`.
//! To keep components statistically independent *and* stable under code
//! changes, each component derives its own stream from the master seed
//! and a label: adding a new consumer of randomness never perturbs the
//! draws seen by existing consumers.
//!
//! The stream cipher is [`ChaCha12Rng`], chosen over `rand`'s `StdRng`
//! because `StdRng`'s algorithm is explicitly allowed to change between
//! `rand` versions, which would silently change every experiment
//! output.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Derives independent, reproducible RNG streams from one master seed.
///
/// # Examples
///
/// ```
/// use mobic_sim::rng::SeedSplitter;
/// use rand::Rng;
///
/// let splitter = SeedSplitter::new(42);
/// let mut mobility = splitter.stream("mobility", 0);
/// let mut placement = splitter.stream("placement", 0);
/// // Streams are independent but fully reproducible:
/// let a: f64 = mobility.gen();
/// let b: f64 = splitter.stream("mobility", 0).gen();
/// assert_eq!(a, b);
/// let c: f64 = placement.gen();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Creates a splitter from a master seed.
    #[must_use]
    pub const fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed this splitter was built from.
    #[must_use]
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Returns the RNG stream for (`label`, `index`).
    ///
    /// `label` names the consumer ("mobility", "loss", …); `index`
    /// distinguishes per-entity streams (e.g. one per node) so each
    /// node's mobility is independent of the others.
    #[must_use]
    pub fn stream(&self, label: &str, index: u64) -> ChaCha12Rng {
        let mut h = Fnv1a::new();
        h.write_u64(self.master);
        h.write(label.as_bytes());
        h.write_u64(index);
        // Widen the 64-bit digest into a 256-bit ChaCha seed with
        // splitmix64 so all seed words are filled.
        let mut seed = [0u8; 32];
        let mut s = h.finish();
        for chunk in seed.chunks_exact_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        ChaCha12Rng::from_seed(seed)
    }

    /// A derived splitter, for nesting (e.g. a per-run splitter derived
    /// from an experiment-level splitter and a run index).
    #[must_use]
    pub fn child(&self, label: &str, index: u64) -> SeedSplitter {
        let mut h = Fnv1a::new();
        h.write_u64(self.master);
        h.write(label.as_bytes());
        h.write_u64(index);
        SeedSplitter::new(splitmix64(h.finish()))
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, good diffusion for short
/// label inputs. Not cryptographic; we only need distinct seeds.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One round of splitmix64 — used to expand digests into seed material.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let s = SeedSplitter::new(7);
        let a: Vec<u64> = (0..8)
            .map(|_| 0u64)
            .zip(0..8)
            .map(|_| s.stream("x", 3).gen())
            .collect();
        let b: Vec<u64> = (0..8).map(|_| s.stream("x", 3).gen()).collect();
        // Every fresh stream with identical label+index starts identically.
        assert!(a.iter().all(|&v| v == a[0]));
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSplitter::new(7);
        let a: u64 = s.stream("mobility", 0).gen();
        let b: u64 = s.stream("placement", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_differ() {
        let s = SeedSplitter::new(7);
        let a: u64 = s.stream("mobility", 0).gen();
        let b: u64 = s.stream("mobility", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        let a: u64 = SeedSplitter::new(1).stream("x", 0).gen();
        let b: u64 = SeedSplitter::new(2).stream("x", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_splitters_are_independent() {
        let root = SeedSplitter::new(99);
        let c1 = root.child("run", 0);
        let c2 = root.child("run", 1);
        assert_ne!(c1.master(), c2.master());
        let a: u64 = c1.stream("x", 0).gen();
        let b: u64 = c2.stream("x", 0).gen();
        assert_ne!(a, b);
        // Reproducible.
        assert_eq!(root.child("run", 0).master(), c1.master());
    }

    #[test]
    fn label_boundaries_matter() {
        // ("ab", suffix "c...") vs ("a", "bc...") style collisions:
        // writing length-delimited u64 index after the label prevents
        // trivial concatenation collisions for our usage patterns.
        let s = SeedSplitter::new(7);
        let a: u64 = s.stream("ab", 0).gen();
        let b: u64 = s.stream("a", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_is_not_identity_and_diffuses() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        // Single-bit input change flips many output bits (sanity, not proof).
        let d = (splitmix64(0x1234) ^ splitmix64(0x1235)).count_ones();
        assert!(d > 10, "poor diffusion: {d} bits");
    }

    #[test]
    fn uniformity_smoke_test() {
        let s = SeedSplitter::new(123);
        let mut rng = s.stream("uniform", 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
