//! Property tests of the event queue and run loop: global time
//! ordering with FIFO tie-breaking under arbitrary interleavings of
//! pushes and pops, and run-loop/queue agreement.

use mobic_sim::{EventQueue, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    /// Popping everything yields a stable sort by (time, insertion
    /// order), regardless of the insertion order.
    #[test]
    fn drains_in_stable_time_order(times in prop::collection::vec(0u64..50, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut drained = Vec::new();
        while let Some((t, i)) = q.pop() {
            drained.push((t.as_micros(), i));
        }
        prop_assert_eq!(drained, expected);
    }

    /// Interleaved push/pop: every pop returns the minimum pending
    /// (time, seq) at that moment.
    #[test]
    fn interleaved_operations_preserve_heap_property(
        ops in prop::collection::vec((any::<bool>(), 0u64..30), 1..150),
    ) {
        let mut q = EventQueue::new();
        let mut shadow: Vec<(u64, usize)> = Vec::new(); // (time, seq)
        let mut seq = 0usize;
        for (is_push, t) in ops {
            if is_push || shadow.is_empty() {
                q.push(SimTime::from_micros(t), seq);
                shadow.push((t, seq));
                seq += 1;
            } else {
                let popped = q.pop().expect("shadow says non-empty");
                let min_idx = shadow
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, s))| (t, s))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (mt, ms) = shadow.swap_remove(min_idx);
                prop_assert_eq!((popped.0.as_micros(), popped.1), (mt, ms));
            }
            prop_assert_eq!(q.len(), shadow.len());
        }
    }

    /// The run loop delivers exactly the events at or before the
    /// horizon, in order, and leaves the rest queued.
    #[test]
    fn run_loop_respects_horizon(
        times in prop::collection::vec(0u64..100, 1..100),
        horizon in 0u64..100,
    ) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), i);
        }
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_micros(horizon), |at, i, _| {
            seen.push((at.as_micros(), i));
        });
        let mut expected: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .filter(|(_, &t)| t <= horizon)
            .map(|(i, &t)| (t, i))
            .collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let last_t = expected.last().map_or(0, |&(t, _)| t);
        prop_assert_eq!(seen, expected);
        prop_assert_eq!(sim.now(), SimTime::from_micros(horizon.max(last_t)));
    }
}
