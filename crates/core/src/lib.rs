//! The paper's primary contribution: the **aggregate local mobility
//! metric** and **MOBIC**, a lowest-relative-mobility distributed
//! clustering algorithm — together with the Lowest-ID/LCC and
//! Highest-Degree baselines it is evaluated against.
//!
//! # The metric (§3.1)
//!
//! At node `Y`, for each neighbor `X` that delivered two *successive*
//! hello broadcasts, the pairwise relative mobility is the dB ratio of
//! the received powers:
//!
//! ```text
//! M_rel^Y(X) = 10·log10( RxPr_new / RxPr_old )
//! ```
//!
//! (negative ⇒ drifting apart, positive ⇒ approaching; see
//! [`metric::relative_mobility`]). The **aggregate local mobility** is
//! the variance about zero — the mean square — of those values over
//! all qualifying neighbors ([`metric::aggregate_mobility`]):
//!
//! ```text
//! M_Y = var₀(M_rel^Y(X₁) … M_rel^Y(X_m)) = E[(M_rel^Y)²]
//! ```
//!
//! # The algorithm (§3.2)
//!
//! MOBIC is Lowest-ID clustering with the totally ordered weight
//! `(M, id)` instead of `id`, plus two stabilization rules:
//!
//! 1. the **LCC rule** — a member entering a foreign cluster's range
//!    does not trigger reclustering;
//! 2. the **CCI rule** — two clusterheads drifting into range defer
//!    reclustering for a Cluster Contention Interval, tolerating
//!    incidental contact.
//!
//! All four algorithms in the paper's evaluation are instantiations of
//! one distributed weight-based engine ([`ClusterNode`]) selected by
//! [`AlgorithmKind`]:
//!
//! | Kind | Weight | Maintenance |
//! |------|--------|-------------|
//! | [`AlgorithmKind::LowestId`] | `(0, id)` | plain re-election (Gerla–Tsai) |
//! | [`AlgorithmKind::Lcc`] | `(0, id)` | least clusterhead change |
//! | [`AlgorithmKind::HighestDegree`] | `(−degree, id)` | plain re-election |
//! | [`AlgorithmKind::Mobic`] | `(M, id)` | LCC + CCI deferral |
//! | [`AlgorithmKind::Wca`] | `(M + ½·\|deg−8\|, id)` | LCC + CCI deferral (extension) |
//!
//! # Examples
//!
//! Computing the metric exactly as a node would:
//!
//! ```
//! use mobic_core::metric::{aggregate_mobility, relative_mobility};
//! use mobic_radio::Dbm;
//!
//! // Neighbor A approaching (+3 dB), neighbor B receding (−5 dB).
//! let m_a = relative_mobility(Dbm::new(-63.0), Dbm::new(-60.0));
//! let m_b = relative_mobility(Dbm::new(-60.0), Dbm::new(-65.0));
//! assert_eq!(m_a, 3.0);
//! assert_eq!(m_b, -5.0);
//! // var₀ = (3² + 5²) / 2 = 17.
//! assert_eq!(aggregate_mobility([m_a, m_b]), 17.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod invariants;
pub mod metric;
mod node;
mod node_table;
mod role;
mod weight;

pub use node::{AlgorithmKind, ClusterConfig, ClusterNode};
pub use node_table::NodeTable;
pub use role::{ClusterAdvert, Role, RoleTag, RoleTransition};
pub use weight::Weight;

/// Convenient alias: the neighbor table as seen by the clustering
/// layer, with cluster adverts as hello payloads.
pub type ClusterTable = mobic_net::NeighborTable<ClusterAdvert>;
