//! Totally ordered clusterhead-election weights.

use std::cmp::Ordering;
use std::fmt;

use mobic_net::NodeId;
use serde::{Deserialize, Serialize};

/// An election weight: a finite primary value with the node id as the
/// tie-breaker, ordered lexicographically. **Lower weight wins** the
/// clusterhead election.
///
/// This is the paper's Theorem-1 construction: the raw aggregate
/// mobility `M` alone may not be totally ordered (ties are possible),
/// so the *augmented* weight `{M, ID}` is used, which **is** totally
/// ordered because ids are unique. The same type expresses every
/// algorithm in the evaluation:
///
/// * Lowest-ID / LCC: primary `0.0` for everyone — ids decide;
/// * MOBIC: primary `M` — mobility decides, ids break ties;
/// * Highest-Degree: primary `−degree` — highest degree wins, ids
///   break ties.
///
/// # Examples
///
/// ```
/// use mobic_core::Weight;
/// use mobic_net::NodeId;
///
/// let calm = Weight::new(0.5, NodeId::new(9));
/// let mobile = Weight::new(4.2, NodeId::new(1));
/// assert!(calm < mobile); // lower mobility wins despite higher id
///
/// let a = Weight::new(1.0, NodeId::new(1));
/// let b = Weight::new(1.0, NodeId::new(2));
/// assert!(a < b); // tie on primary → lower id wins
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weight {
    primary: f64,
    id: NodeId,
}

impl Weight {
    /// Creates a weight.
    ///
    /// # Panics
    ///
    /// Panics if `primary` is not finite — NaN would destroy the total
    /// order the clustering correctness proof depends on.
    #[must_use]
    pub fn new(primary: f64, id: NodeId) -> Self {
        assert!(
            primary.is_finite(),
            "election weight must be finite, got {primary}"
        );
        Weight { primary, id }
    }

    /// The primary component (0 for Lowest-ID, `M` for MOBIC,
    /// `−degree` for Highest-Degree).
    #[must_use]
    pub fn primary(&self) -> f64 {
        self.primary
    }

    /// The tie-breaking node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        // `primary` is asserted finite, so partial_cmp cannot fail.
        self.primary
            .partial_cmp(&other.primary)
            .expect("weights are finite")
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {})", self.primary, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(p: f64, id: u32) -> Weight {
        Weight::new(p, NodeId::new(id))
    }

    #[test]
    fn primary_dominates() {
        assert!(w(0.1, 100) < w(0.2, 0));
        assert!(w(-5.0, 100) < w(-4.0, 0));
    }

    #[test]
    fn id_breaks_ties() {
        assert!(w(1.0, 1) < w(1.0, 2));
        assert_eq!(w(1.0, 1), w(1.0, 1));
    }

    #[test]
    fn total_order_on_distinct_ids() {
        // Any two weights with distinct ids are strictly ordered.
        let a = w(3.0, 1);
        let b = w(3.0, 2);
        assert_ne!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn sorting_gives_election_order() {
        let mut v = [w(2.0, 1), w(0.0, 9), w(2.0, 0), w(1.0, 5)];
        v.sort();
        let order: Vec<u32> = v.iter().map(|x| x.id().value()).collect();
        assert_eq!(order, vec![9, 5, 0, 1]);
    }

    #[test]
    fn accessors() {
        let x = w(2.5, 7);
        assert_eq!(x.primary(), 2.5);
        assert_eq!(x.id(), NodeId::new(7));
        assert_eq!(x.to_string(), "(2.5000, n7)");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_primary_panics() {
        let _ = w(f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_primary_panics() {
        let _ = w(f64::INFINITY, 0);
    }
}
