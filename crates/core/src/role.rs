//! Cluster roles, hello adverts, and role-transition events.

use std::fmt;

use mobic_net::NodeId;
use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A node's cluster role.
///
/// Gateways are *not* a separate role in the election state machine —
/// per the paper, a gateway is simply a node "which can hear two or
/// more clusterheads"; it is derived from the neighbor table (see
/// [`ClusterNode::is_gateway`](crate::ClusterNode::is_gateway)) rather
/// than elected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Role {
    /// Initial state, and the state re-entered when a member loses its
    /// clusterhead (the paper's `Cluster_Undecided`).
    #[default]
    Undecided,
    /// An elected clusterhead (`Cluster_Head`).
    Clusterhead,
    /// A member of the cluster headed by `ch` (`Cluster_Member`).
    Member {
        /// The clusterhead this node is affiliated with.
        ch: NodeId,
    },
}

impl Role {
    /// `true` for [`Role::Clusterhead`].
    #[must_use]
    pub fn is_clusterhead(&self) -> bool {
        matches!(self, Role::Clusterhead)
    }

    /// The clusterhead this node belongs to: itself if it is a
    /// clusterhead, its affiliation if a member, `None` if undecided.
    #[must_use]
    pub fn cluster_of(&self, own_id: NodeId) -> Option<NodeId> {
        match self {
            Role::Undecided => None,
            Role::Clusterhead => Some(own_id),
            Role::Member { ch } => Some(*ch),
        }
    }

    /// The compact tag without affiliation, as carried in hellos.
    #[must_use]
    pub fn tag(&self) -> RoleTag {
        match self {
            Role::Undecided => RoleTag::Undecided,
            Role::Clusterhead => RoleTag::Clusterhead,
            Role::Member { .. } => RoleTag::Member,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Undecided => write!(f, "undecided"),
            Role::Clusterhead => write!(f, "clusterhead"),
            Role::Member { ch } => write!(f, "member({ch})"),
        }
    }
}

/// The role as advertised on the wire (no payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoleTag {
    /// Advertised `Cluster_Undecided`.
    Undecided,
    /// Advertised `Cluster_Head`.
    Clusterhead,
    /// Advertised `Cluster_Member`.
    Member,
}

/// What a node stamps onto its hello broadcasts (§3.2): its current
/// weight primary (the aggregate mobility `M` for MOBIC — "represented
/// by a double precision floating point number", the paper's 8-byte
/// overhead), its role, and its cluster affiliation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterAdvert {
    /// The sender's advertised weight primary (see
    /// [`Weight`](crate::Weight)).
    pub primary: f64,
    /// The sender's role at broadcast time.
    pub role: RoleTag,
    /// The sender's clusterhead (itself if it is one), if decided.
    pub ch: Option<NodeId>,
}

impl ClusterAdvert {
    /// The advert every node starts with: `M = 0`, undecided.
    #[must_use]
    pub fn initial() -> Self {
        ClusterAdvert {
            primary: 0.0,
            role: RoleTag::Undecided,
            ch: None,
        }
    }
}

/// A role change of one node, the raw event behind the paper's
/// cluster-stability metric `CS` ("number of clusterhead changes").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoleTransition {
    /// When the change happened.
    pub at: SimTime,
    /// The node that changed.
    pub node: NodeId,
    /// Previous role.
    pub from: Role,
    /// New role.
    pub to: Role,
}

impl RoleTransition {
    /// `true` if this transition changed clusterhead-ness in either
    /// direction — the events the `CS` metric counts.
    #[must_use]
    pub fn is_clusterhead_change(&self) -> bool {
        self.from.is_clusterhead() != self.to.is_clusterhead()
    }

    /// `true` if this transition changed which cluster the node
    /// belongs to (including gaining/losing a cluster).
    #[must_use]
    pub fn is_affiliation_change(&self) -> bool {
        self.from.cluster_of(self.node) != self.to.cluster_of(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn role_predicates() {
        assert!(Role::Clusterhead.is_clusterhead());
        assert!(!Role::Undecided.is_clusterhead());
        assert!(!Role::Member { ch: n(1) }.is_clusterhead());
    }

    #[test]
    fn cluster_of() {
        assert_eq!(Role::Undecided.cluster_of(n(5)), None);
        assert_eq!(Role::Clusterhead.cluster_of(n(5)), Some(n(5)));
        assert_eq!(Role::Member { ch: n(2) }.cluster_of(n(5)), Some(n(2)));
    }

    #[test]
    fn tags() {
        assert_eq!(Role::Member { ch: n(1) }.tag(), RoleTag::Member);
        assert_eq!(Role::default(), Role::Undecided);
    }

    #[test]
    fn initial_advert_matches_paper() {
        let a = ClusterAdvert::initial();
        assert_eq!(a.primary, 0.0);
        assert_eq!(a.role, RoleTag::Undecided);
        assert_eq!(a.ch, None);
    }

    #[test]
    fn clusterhead_change_detection() {
        let tr = |from, to| RoleTransition {
            at: SimTime::ZERO,
            node: n(0),
            from,
            to,
        };
        assert!(tr(Role::Undecided, Role::Clusterhead).is_clusterhead_change());
        assert!(tr(Role::Clusterhead, Role::Member { ch: n(1) }).is_clusterhead_change());
        assert!(!tr(Role::Member { ch: n(1) }, Role::Member { ch: n(2) }).is_clusterhead_change());
        assert!(!tr(Role::Undecided, Role::Member { ch: n(1) }).is_clusterhead_change());
    }

    #[test]
    fn affiliation_change_detection() {
        let tr = |from, to| RoleTransition {
            at: SimTime::ZERO,
            node: n(5),
            from,
            to,
        };
        assert!(tr(Role::Member { ch: n(1) }, Role::Member { ch: n(2) }).is_affiliation_change());
        assert!(tr(Role::Undecided, Role::Clusterhead).is_affiliation_change());
        assert!(!tr(Role::Member { ch: n(1) }, Role::Member { ch: n(1) }).is_affiliation_change());
        // Becoming CH of "own" cluster from membership elsewhere.
        assert!(tr(Role::Member { ch: n(1) }, Role::Clusterhead).is_affiliation_change());
    }

    #[test]
    fn display() {
        assert_eq!(Role::Clusterhead.to_string(), "clusterhead");
        assert_eq!(Role::Member { ch: n(3) }.to_string(), "member(n3)");
    }
}
