//! The distributed clustering state machine (§3.2).
//!
//! One [`ClusterNode`] instance runs at every simulated node. The node
//! interacts with the world through exactly two calls per broadcast
//! interval, mirroring the protocol in the paper:
//!
//! 1. [`ClusterNode::prepare_broadcast`] — right before sending a
//!    hello: compute the aggregate mobility metric from the neighbor
//!    table, produce the [`ClusterAdvert`] to stamp onto the packet;
//! 2. [`ClusterNode::evaluate`] — run the clustering rules against the
//!    (expired) neighbor table and possibly change role.
//!
//! All four algorithms share this engine; [`AlgorithmKind`] selects the
//! weight function and the maintenance discipline (plain re-election
//! vs. least-clusterhead-change, and the CCI deferral for MOBIC).

use std::collections::BTreeMap;

use mobic_net::NodeId;
use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::metric::{table_mobility_with, MetricAggregation, MetricSmoother};
use crate::role::{ClusterAdvert, Role, RoleTag, RoleTransition};
use crate::weight::Weight;
use crate::ClusterTable;

/// Which clustering algorithm a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Plain Lowest-ID clustering (Gerla–Tsai \[5\]): roles follow the
    /// current id landscape with no damping — a clusterhead defers as
    /// soon as any lower id appears nearby.
    LowestId,
    /// Lowest-ID with the Least Clusterhead Change rules of Chiang et
    /// al. \[3\] — the baseline the paper actually plots as
    /// "Lowest-ID".
    Lcc,
    /// Max-connectivity \[5\]: the highest-degree node wins, plain
    /// re-election. Known to be the least stable; included as the
    /// second baseline.
    HighestDegree,
    /// The paper's contribution: LCC-style maintenance with the
    /// aggregate local mobility metric as the weight and CCI deferral
    /// on clusterhead contention.
    Mobic,
    /// WCA-lite (extension): a combined weight in the spirit of the
    /// Weighted Clustering Algorithm, instantiating the weight
    /// assignment the DCA paper \[2\] left open — mobility plus a
    /// degree-deviation penalty, `M + 0.5·|degree − ideal|` with an
    /// ideal degree of 8, under the same LCC-style maintenance and CCI
    /// deferral as MOBIC. Prefers calm nodes whose clusters are
    /// neither starved nor overloaded.
    Wca,
}

impl AlgorithmKind {
    /// `true` for the algorithms using LCC-style (stability-first)
    /// maintenance.
    #[must_use]
    pub fn is_lcc_style(self) -> bool {
        matches!(
            self,
            AlgorithmKind::Lcc | AlgorithmKind::Mobic | AlgorithmKind::Wca
        )
    }

    /// All algorithm kinds, in presentation order.
    pub const ALL: [AlgorithmKind; 5] = [
        AlgorithmKind::LowestId,
        AlgorithmKind::Lcc,
        AlgorithmKind::HighestDegree,
        AlgorithmKind::Mobic,
        AlgorithmKind::Wca,
    ];

    /// Human-readable name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::LowestId => "lowest-id",
            AlgorithmKind::Lcc => "lcc",
            AlgorithmKind::HighestDegree => "highest-degree",
            AlgorithmKind::Mobic => "mobic",
            AlgorithmKind::Wca => "wca",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the clustering layer, shared by all nodes of a
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The algorithm to run.
    pub algorithm: AlgorithmKind,
    /// Cluster Contention Interval: how long two clusterheads may
    /// coexist in range before reclustering triggers. Only MOBIC
    /// defers; the paper's value is 4 s (Table 1). Ignored by the
    /// other algorithms (treated as zero).
    pub cci: SimTime,
    /// Freshness window for metric samples: a neighbor's
    /// successive-pair must be at most this old to contribute to `M`.
    /// Defaults to the timeout period (3 s).
    pub metric_max_age: SimTime,
    /// Optional EWMA history weight for the §5 "history information"
    /// extension; `None` reproduces the paper's memoryless metric.
    pub history_alpha: Option<f64>,
    /// How pairwise relative-mobility samples fold into `M` —
    /// [`MetricAggregation::Var0`] is the paper's Eq. 2; the robust
    /// variants are ablation extensions.
    pub aggregation: MetricAggregation,
    /// Quantization step for the advertised/compared metric: `M` is
    /// rounded to the nearest multiple before entering the election
    /// weight, so that near-ties become *exact* ties and fall back to
    /// the paper's Lowest-ID rule instead of being decided by
    /// measurement noise. `0.0` disables quantization (raw doubles,
    /// the paper's letter). See DESIGN.md for the rationale and the
    /// `ablation_quantum` bench for the effect.
    pub metric_quantum: f64,
    /// How long a node that lost its cluster may stay
    /// `Cluster_Undecided` — hoping to drift into an existing cluster —
    /// before the completeness fallback lets it claim clusterhead
    /// status against its undecided neighbors only. Zero self-elects
    /// immediately. The paper leaves this protocol detail unspecified;
    /// the default (2·BI = one full neighbor-table refresh) is chosen
    /// and ablated in DESIGN.md/EXPERIMENTS.md.
    pub undecided_patience: SimTime,
}

impl ClusterConfig {
    /// The paper's Table-1 configuration for a given algorithm:
    /// `CCI = 4 s`, metric freshness = `TP = 3 s`, no history.
    #[must_use]
    pub fn paper_default(algorithm: AlgorithmKind) -> Self {
        ClusterConfig {
            algorithm,
            cci: SimTime::from_secs(4),
            metric_max_age: SimTime::from_secs(3),
            history_alpha: None,
            aggregation: MetricAggregation::Var0,
            metric_quantum: 0.0,
            undecided_patience: SimTime::from_secs(4),
        }
    }
}

/// The per-node clustering state machine.
///
/// # Examples
///
/// Driving a 2-node election by hand (normally the scenario runner
/// does this):
///
/// ```
/// use mobic_core::{AlgorithmKind, ClusterConfig, ClusterNode, ClusterTable, Role};
/// use mobic_net::{Hello, NodeId};
/// use mobic_radio::Dbm;
/// use mobic_sim::SimTime;
///
/// let cfg = ClusterConfig::paper_default(AlgorithmKind::Lcc);
/// let mut n0 = ClusterNode::new(NodeId::new(0), cfg);
/// let mut table0 = ClusterTable::new(SimTime::from_secs(3));
/// let mut n1 = ClusterNode::new(NodeId::new(1), cfg);
///
/// // Node 0 hears node 1's (undecided) hello, then evaluates:
/// let t = SimTime::from_secs(2);
/// let hello1 = n1.prepare_broadcast(t, &mut ClusterTable::new(SimTime::from_secs(3)));
/// assert_eq!(hello1.sender, NodeId::new(1));
/// table0.record(t, Dbm::new(-60.0), &hello1);
/// n0.evaluate(t, &mut table0);
/// // Node 0 has the lowest id among undecided neighbors → clusterhead.
/// assert_eq!(n0.role(), Role::Clusterhead);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterNode {
    id: NodeId,
    cfg: ClusterConfig,
    role: Role,
    /// The most recently computed aggregate mobility (possibly
    /// smoothed) — MOBIC's weight primary.
    metric_value: f64,
    /// Neighbors contributing to the last metric computation.
    metric_samples: usize,
    smoother: Option<MetricSmoother>,
    /// Ongoing clusterhead contentions: contender id → first time we
    /// saw them as a contending clusterhead.
    contention: BTreeMap<NodeId, SimTime>,
    /// When the node (re-)entered the undecided state, for the
    /// self-election patience window.
    undecided_since: Option<SimTime>,
    broadcasts_sent: u64,
}

impl ClusterNode {
    /// Creates a node in the `Cluster_Undecided` state with `M = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.history_alpha` is outside `[0, 1)`.
    #[must_use]
    pub fn new(id: NodeId, cfg: ClusterConfig) -> Self {
        ClusterNode {
            id,
            cfg,
            role: Role::Undecided,
            metric_value: 0.0,
            metric_samples: 0,
            smoother: cfg.history_alpha.map(MetricSmoother::new),
            contention: BTreeMap::new(),
            undecided_since: Some(SimTime::ZERO),
            broadcasts_sent: 0,
        }
    }

    /// Wipes all protocol state back to a freshly booted
    /// `Cluster_Undecided` node, as after a crash recovery: role,
    /// metric, contention clocks, and history smoothing are gone, and
    /// the patience window restarts at `now`. The hello sequence
    /// counter is deliberately **kept** — a revived node must not
    /// reuse sequence numbers, or neighbors holding an unexpired entry
    /// for it would discard its first post-recovery hellos as stale
    /// duplicates.
    pub fn reset(&mut self, now: SimTime) {
        self.role = Role::Undecided;
        self.metric_value = 0.0;
        self.metric_samples = 0;
        self.smoother = self.cfg.history_alpha.map(MetricSmoother::new);
        self.contention.clear();
        self.undecided_since = Some(now);
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The last computed (possibly smoothed) aggregate mobility `M`.
    #[must_use]
    pub fn metric(&self) -> f64 {
        self.metric_value
    }

    /// How many neighbors contributed to the last metric computation.
    #[must_use]
    pub fn metric_samples(&self) -> usize {
        self.metric_samples
    }

    /// Number of hellos this node has broadcast (the hello sequence
    /// number source).
    #[must_use]
    pub fn broadcasts_sent(&self) -> u64 {
        self.broadcasts_sent
    }

    /// The node's current election weight.
    #[must_use]
    pub fn weight(&self, table: &ClusterTable) -> Weight {
        Weight::new(self.primary(table), self.id)
    }

    /// `true` if this node is currently a gateway: a non-clusterhead
    /// that hears two or more clusterheads (the paper's definition).
    #[must_use]
    pub fn is_gateway(&self, table: &ClusterTable) -> bool {
        !self.role.is_clusterhead()
            && table
                .iter()
                .filter(|(_, e)| e.payload.role == RoleTag::Clusterhead)
                .count()
                >= 2
    }

    /// Computes the fresh aggregate mobility metric from the table and
    /// returns the complete [`Hello`](mobic_net::Hello) packet to
    /// broadcast: sender, the next sequence number, and the
    /// [`ClusterAdvert`] stamped onto it. Also expires stale neighbors
    /// first (their hellos stopped, so they must not contribute).
    pub fn prepare_broadcast(
        &mut self,
        now: SimTime,
        table: &mut ClusterTable,
    ) -> mobic_net::Hello<ClusterAdvert> {
        table.expire_count(now);
        let agg = table_mobility_with(table, now, self.cfg.metric_max_age, self.cfg.aggregation);
        self.metric_samples = agg.samples;
        self.metric_value = match &mut self.smoother {
            Some(s) => s.update(agg.value),
            None => agg.value,
        };
        let seq = self.broadcasts_sent;
        self.broadcasts_sent += 1;
        mobic_net::Hello {
            sender: self.id,
            seq,
            payload: ClusterAdvert {
                primary: self.primary(table),
                role: self.role.tag(),
                ch: self.role.cluster_of(self.id),
            },
        }
    }

    /// The sequence number to use for the *next* broadcast.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.broadcasts_sent
    }

    /// Runs one clustering evaluation against the neighbor table
    /// (expiring stale entries first). Returns the role transition if
    /// the role changed.
    pub fn evaluate(&mut self, now: SimTime, table: &mut ClusterTable) -> Option<RoleTransition> {
        table.expire_count(now);
        let old_role = self.role;
        let new_role = if self.cfg.algorithm.is_lcc_style() {
            self.evaluate_lcc(now, table)
        } else {
            self.evaluate_plain(table)
        };
        if new_role != old_role {
            self.role = new_role;
            if !new_role.is_clusterhead() {
                self.contention.clear();
            }
            self.undecided_since = (new_role == Role::Undecided).then_some(now);
            Some(RoleTransition {
                at: now,
                node: self.id,
                from: old_role,
                to: new_role,
            })
        } else {
            None
        }
    }

    /// The weight primary for this node under its algorithm.
    fn primary(&self, table: &ClusterTable) -> f64 {
        let quantized_metric = || {
            let q = self.cfg.metric_quantum;
            if q > 0.0 {
                (self.metric_value / q).round() * q
            } else {
                self.metric_value
            }
        };
        match self.cfg.algorithm {
            AlgorithmKind::LowestId | AlgorithmKind::Lcc => 0.0,
            AlgorithmKind::Mobic => quantized_metric(),
            AlgorithmKind::HighestDegree => -(table.degree() as f64),
            AlgorithmKind::Wca => {
                const IDEAL_DEGREE: f64 = 8.0;
                quantized_metric() + 0.5 * (table.degree() as f64 - IDEAL_DEGREE).abs()
            }
        }
    }

    /// The lowest-weight neighbor currently advertising clusterhead
    /// status, if any.
    fn lowest_ch_neighbor(&self, table: &ClusterTable) -> Option<(NodeId, Weight)> {
        table
            .iter()
            .filter(|(_, e)| e.payload.role == RoleTag::Clusterhead)
            .map(|(id, e)| (id, Weight::new(e.payload.primary, id)))
            .min_by(|a, b| a.1.cmp(&b.1))
    }

    /// `true` if this node's weight is strictly lowest among **all**
    /// neighbors, regardless of their role — the paper's §3.2 rule "if
    /// a node has the lowest value of M amongst all its neighbors, it
    /// assumes the status of a Cluster_Head" (vacuously true for an
    /// isolated node).
    fn wins_election(&self, me: Weight, table: &ClusterTable) -> bool {
        table
            .iter()
            .all(|(id, e)| me < Weight::new(e.payload.primary, id))
    }

    /// `true` if this node's weight is strictly lowest among all
    /// *undecided* neighbors (vacuously true with none) — the DCA-style
    /// completeness fallback: decided neighbors (members of other
    /// clusters) have already deferred to their own clusterheads, so
    /// they do not block a patient orphan from heading a new cluster.
    fn wins_election_among_undecided(&self, me: Weight, table: &ClusterTable) -> bool {
        table
            .iter()
            .filter(|(_, e)| e.payload.role == RoleTag::Undecided)
            .all(|(id, e)| me < Weight::new(e.payload.primary, id))
    }

    /// LCC / MOBIC maintenance (stability-first).
    fn evaluate_lcc(&mut self, now: SimTime, table: &ClusterTable) -> Role {
        let me = self.weight(table);
        match self.role {
            Role::Undecided => self.elect(now, me, table),
            Role::Member { ch } => {
                let ch_alive = table
                    .get(ch)
                    .is_some_and(|e| e.payload.role == RoleTag::Clusterhead);
                if ch_alive {
                    // LCC rule: stay with the current clusterhead even
                    // if "better" clusterheads drift into range.
                    Role::Member { ch }
                } else {
                    // Lost the clusterhead: re-affiliate or re-elect.
                    // A member entering the election afresh gets a new
                    // patience window starting now.
                    self.undecided_since = Some(now);
                    self.elect(now, me, table)
                }
            }
            Role::Clusterhead => self.resolve_contention(now, me, table),
        }
    }

    /// Joins the best reachable clusterhead; otherwise claims
    /// clusterhead status if this node beats *every* neighbor (§3.2);
    /// otherwise waits — a highly mobile node that just lost its
    /// cluster should ride along undecided rather than crown itself,
    /// which is the heart of MOBIC's stability. Once the patience
    /// window expires, the DCA completeness fallback lets the node
    /// claim the role against undecided neighbors only, so coverage is
    /// eventually restored even deep inside foreign clusters.
    fn elect(&self, now: SimTime, me: Weight, table: &ClusterTable) -> Role {
        if let Some((ch, _)) = self.lowest_ch_neighbor(table) {
            return Role::Member { ch };
        }
        if self.wins_election(me, table) {
            return Role::Clusterhead;
        }
        let waited = self
            .undecided_since
            .map(|since| now.saturating_sub(since) >= self.cfg.undecided_patience);
        if waited == Some(true) && self.wins_election_among_undecided(me, table) {
            Role::Clusterhead
        } else {
            Role::Undecided
        }
    }

    /// Plain re-election, the maintenance-free discipline of the
    /// original Lowest-ID \[5\] and max-connectivity algorithms: the
    /// role follows the current weight landscape with no damping. The
    /// instability this causes is exactly what LCC (and MOBIC) fix.
    fn evaluate_plain(&mut self, table: &ClusterTable) -> Role {
        let me = self.weight(table);
        // Affiliate with the lowest-weight clusterhead that beats us.
        let low_ch = table
            .iter()
            .filter(|(_, e)| e.payload.role == RoleTag::Clusterhead)
            .map(|(id, e)| (id, Weight::new(e.payload.primary, id)))
            .filter(|&(_, w)| w < me)
            .min_by(|a, b| a.1.cmp(&b.1));
        if let Some((ch, _)) = low_ch {
            return Role::Member { ch };
        }
        // Plain algorithms self-elect eagerly: a node with no better
        // clusterhead in range claims the role as soon as it beats the
        // undecided competition (members don't block). This is the
        // churn-prone behavior LCC was invented to damp.
        if self.wins_election_among_undecided(me, table) {
            Role::Clusterhead
        } else {
            Role::Undecided
        }
    }

    /// Clusterhead-vs-clusterhead contention handling, with the CCI
    /// deferral for MOBIC ("reclustering is deferred for CCI to allow
    /// for incidental contacts between passing nodes").
    fn resolve_contention(&mut self, now: SimTime, me: Weight, table: &ClusterTable) -> Role {
        // Track when each contending clusterhead first appeared. The
        // contender set is read straight off the table (id order) with
        // no intermediate collection: the only allocation left is the
        // `contention` map node for a genuinely new contender, so a
        // stable clusterhead re-evaluates allocation-free.
        self.contention.retain(|id, _| {
            table
                .get(*id)
                .is_some_and(|e| e.payload.role == RoleTag::Clusterhead)
        });
        for (id, e) in table.iter() {
            if e.payload.role == RoleTag::Clusterhead {
                self.contention.entry(id).or_insert(now);
            }
        }
        let deferral = if matches!(
            self.cfg.algorithm,
            AlgorithmKind::Mobic | AlgorithmKind::Wca
        ) {
            self.cfg.cci
        } else {
            SimTime::ZERO
        };
        // Resolve every contention whose deferral has elapsed: the
        // higher weight resigns and joins the winner.
        let mut winner: Option<(NodeId, Weight)> = None;
        for (id, e) in table.iter() {
            if e.payload.role != RoleTag::Clusterhead {
                continue;
            }
            let w = Weight::new(e.payload.primary, id);
            let since = self.contention[&id];
            if now.saturating_sub(since) >= deferral && w < me {
                match winner {
                    Some((_, best)) if best <= w => {}
                    _ => winner = Some((id, w)),
                }
            }
        }
        match winner {
            Some((ch, _)) => Role::Member { ch },
            None => Role::Clusterhead,
        }
    }

    /// `true` if re-running [`evaluate`](Self::evaluate) against an
    /// *unchanged* neighbor table is guaranteed to produce no role
    /// transition and no observable state change — the soundness
    /// predicate behind dirty-set incremental reclustering. "Unchanged"
    /// means: no entry appeared, expired, or changed its advert payload
    /// since the last evaluation (power-history refreshes with an
    /// unchanged advert don't count; elections never read power
    /// samples).
    ///
    /// Per role and algorithm family:
    ///
    /// * plain algorithms (Lowest-ID, Highest-Degree) are pure
    ///   functions of the table — always stable;
    /// * an LCC-style member only checks that its clusterhead is still
    ///   alive in the table — stable;
    /// * an LCC-style clusterhead with an **empty** contention map saw
    ///   no rival clusterheads at its last evaluation, and a clean
    ///   table cannot have produced one — stable. With pending
    ///   contention the CCI deferral is time-dependent — not stable;
    /// * an undecided LCC-style node's patience window is
    ///   time-dependent — never stable.
    #[must_use]
    pub fn election_is_stable(&self) -> bool {
        if !self.cfg.algorithm.is_lcc_style() {
            return true;
        }
        match self.role {
            Role::Undecided => false,
            Role::Member { .. } => true,
            Role::Clusterhead => self.contention.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_net::Hello;
    use mobic_radio::Dbm;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn table() -> ClusterTable {
        ClusterTable::new(SimTime::from_secs(3))
    }

    /// Records a hello from `sender` with the given advert fields.
    fn hear(
        t: &mut ClusterTable,
        at: SimTime,
        sender: u32,
        seq: u64,
        primary: f64,
        role: RoleTag,
        ch: Option<u32>,
    ) {
        t.record(
            at,
            Dbm::new(-60.0),
            &Hello {
                sender: n(sender),
                seq,
                payload: ClusterAdvert {
                    primary,
                    role,
                    ch: ch.map(n),
                },
            },
        );
    }

    fn node(id: u32, alg: AlgorithmKind) -> ClusterNode {
        ClusterNode::new(n(id), ClusterConfig::paper_default(alg))
    }

    #[test]
    fn isolated_node_becomes_clusterhead() {
        for alg in AlgorithmKind::ALL {
            let mut x = node(5, alg);
            let mut t = table();
            let tr = x.evaluate(SimTime::from_secs(1), &mut t).unwrap();
            assert_eq!(x.role(), Role::Clusterhead, "{alg}");
            assert!(tr.is_clusterhead_change());
        }
    }

    #[test]
    fn lowest_id_wins_initial_election() {
        let now = SimTime::from_secs(2);
        // Node 3 hears undecided nodes 5 and 7 → wins.
        let mut x = node(3, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 5, 0, 0.0, RoleTag::Undecided, None);
        hear(&mut t, now, 7, 0, 0.0, RoleTag::Undecided, None);
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Clusterhead);

        // Node 5 hears undecided 3 → waits.
        let mut y = node(5, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 3, 0, 0.0, RoleTag::Undecided, None);
        assert!(y.evaluate(now, &mut t).is_none());
        assert_eq!(y.role(), Role::Undecided);
    }

    #[test]
    fn undecided_joins_lowest_weight_clusterhead() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        hear(&mut t, now, 2, 0, 0.0, RoleTag::Clusterhead, Some(2));
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Member { ch: n(2) });
    }

    #[test]
    fn lcc_member_does_not_switch_to_better_clusterhead() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Member { ch: n(4) });
        // A lower-id clusterhead appears; LCC keeps the affiliation.
        hear(&mut t, now, 1, 0, 0.0, RoleTag::Clusterhead, Some(1));
        assert!(x.evaluate(now, &mut t).is_none());
        assert_eq!(x.role(), Role::Member { ch: n(4) });
    }

    #[test]
    fn plain_member_switches_to_lower_clusterhead() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::LowestId);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Member { ch: n(4) });
        hear(&mut t, now, 1, 0, 0.0, RoleTag::Clusterhead, Some(1));
        let tr = x.evaluate(now, &mut t).unwrap();
        assert_eq!(x.role(), Role::Member { ch: n(1) });
        assert!(tr.is_affiliation_change());
        assert!(!tr.is_clusterhead_change());
    }

    #[test]
    fn member_reelects_when_clusterhead_lost() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Member { ch: n(4) });
        // CH 4's hellos stop; entry expires. No other neighbors → CH.
        let later = now + SimTime::from_secs(10);
        let tr = x.evaluate(later, &mut t).unwrap();
        assert_eq!(x.role(), Role::Clusterhead);
        assert!(tr.is_clusterhead_change());
    }

    #[test]
    fn member_rejoins_other_clusterhead_when_ch_lost() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        x.evaluate(now, &mut t);
        // Another CH 6 is also in range (x is a gateway).
        hear(&mut t, now, 6, 0, 0.0, RoleTag::Clusterhead, Some(6));
        assert!(x.is_gateway(&t));
        // CH 4 resigns to member (advert update), x must re-affiliate.
        hear(
            &mut t,
            now + SimTime::from_secs(2),
            4,
            1,
            0.0,
            RoleTag::Member,
            Some(2),
        );
        hear(
            &mut t,
            now + SimTime::from_secs(2),
            6,
            1,
            0.0,
            RoleTag::Clusterhead,
            Some(6),
        );
        x.evaluate(now + SimTime::from_secs(2), &mut t);
        assert_eq!(x.role(), Role::Member { ch: n(6) });
    }

    #[test]
    fn lcc_contention_resolves_immediately() {
        let now = SimTime::from_secs(2);
        let mut x = node(5, AlgorithmKind::Lcc);
        let mut t = table();
        x.evaluate(now, &mut t); // isolated → CH
        assert_eq!(x.role(), Role::Clusterhead);
        // Lower-id clusterhead 2 drifts into range: LCC resolves now.
        hear(&mut t, now, 2, 0, 0.0, RoleTag::Clusterhead, Some(2));
        let tr = x.evaluate(now, &mut t).unwrap();
        assert_eq!(x.role(), Role::Member { ch: n(2) });
        assert!(tr.is_clusterhead_change());
    }

    #[test]
    fn lcc_contention_higher_id_keeps_role_against_higher_weight() {
        let now = SimTime::from_secs(2);
        let mut x = node(2, AlgorithmKind::Lcc);
        let mut t = table();
        x.evaluate(now, &mut t);
        // Higher-id clusterhead 7 in range: x (lower) keeps the role.
        hear(&mut t, now, 7, 0, 0.0, RoleTag::Clusterhead, Some(7));
        assert!(x.evaluate(now, &mut t).is_none());
        assert_eq!(x.role(), Role::Clusterhead);
    }

    #[test]
    fn mobic_defers_contention_for_cci() {
        let bi = SimTime::from_secs(2);
        let mut x = node(5, AlgorithmKind::Mobic);
        let mut t = table();
        let t0 = SimTime::from_secs(2);
        x.evaluate(t0, &mut t);
        assert_eq!(x.role(), Role::Clusterhead);
        // A calmer clusterhead (lower M) appears at t0.
        hear(&mut t, t0, 9, 0, 0.0, RoleTag::Clusterhead, Some(9));
        // x has M = 0 too, but id 5 < 9 → x wins ties; make the
        // contender strictly calmer via x's own higher metric: x still
        // has M = 0 here, so instead give contender a *higher* id but
        // we test deferral by checking no change before CCI with a
        // contender that would win.
        // Refresh: contender 3 with M 0 (wins by id).
        hear(&mut t, t0, 3, 0, 0.0, RoleTag::Clusterhead, Some(3));
        // Before CCI elapses: no resignation.
        assert!(x.evaluate(t0, &mut t).is_none());
        assert!(x.evaluate(t0 + bi, &mut t).is_none());
        assert_eq!(x.role(), Role::Clusterhead);
        // Keep the contender alive past CCI (4 s).
        hear(&mut t, t0 + bi, 3, 1, 0.0, RoleTag::Clusterhead, Some(3));
        hear(
            &mut t,
            t0 + bi * 2,
            3,
            2,
            0.0,
            RoleTag::Clusterhead,
            Some(3),
        );
        let tr = x.evaluate(t0 + bi * 2, &mut t).unwrap();
        assert_eq!(x.role(), Role::Member { ch: n(3) });
        assert!(tr.is_clusterhead_change());
    }

    #[test]
    fn mobic_contention_cancelled_if_contender_leaves() {
        let bi = SimTime::from_secs(2);
        let mut x = node(5, AlgorithmKind::Mobic);
        let mut t = table();
        let t0 = SimTime::from_secs(2);
        x.evaluate(t0, &mut t);
        hear(&mut t, t0, 3, 0, 0.0, RoleTag::Clusterhead, Some(3));
        assert!(x.evaluate(t0, &mut t).is_none());
        // Contender 3 leaves (entry expires before CCI elapses).
        let t_late = t0 + bi * 3; // 6 s later > TP
        assert!(x.evaluate(t_late, &mut t).is_none());
        assert_eq!(x.role(), Role::Clusterhead);
        // If 3 returns, the contention clock restarts.
        hear(&mut t, t_late, 3, 1, 0.0, RoleTag::Clusterhead, Some(3));
        assert!(x.evaluate(t_late, &mut t).is_none());
        assert_eq!(x.role(), Role::Clusterhead);
    }

    #[test]
    fn mobic_lower_mobility_wins_contention() {
        let mut calm = node(9, AlgorithmKind::Mobic);
        let mut t = table();
        let t0 = SimTime::from_secs(2);
        calm.evaluate(t0, &mut t); // CH, M = 0
                                   // Contender 1 (lower id!) but higher mobility M = 5.0.
        hear(&mut t, t0, 1, 0, 5.0, RoleTag::Clusterhead, Some(1));
        // Past CCI, keep contender alive.
        let t1 = t0 + SimTime::from_secs(2);
        let t2 = t0 + SimTime::from_secs(4);
        hear(&mut t, t1, 1, 1, 5.0, RoleTag::Clusterhead, Some(1));
        hear(&mut t, t2, 1, 2, 5.0, RoleTag::Clusterhead, Some(1));
        assert!(calm.evaluate(t2, &mut t).is_none());
        assert_eq!(calm.role(), Role::Clusterhead, "calm node must retain CH");
    }

    #[test]
    fn mobic_ties_fall_back_to_lowest_id() {
        // Both CHs with M = 0: the lower id retains the role.
        let mut x = node(5, AlgorithmKind::Mobic);
        let mut t = table();
        let t0 = SimTime::from_secs(2);
        x.evaluate(t0, &mut t);
        let t1 = t0 + SimTime::from_secs(2);
        let t2 = t0 + SimTime::from_secs(4);
        hear(&mut t, t0, 7, 0, 0.0, RoleTag::Clusterhead, Some(7));
        hear(&mut t, t1, 7, 1, 0.0, RoleTag::Clusterhead, Some(7));
        hear(&mut t, t2, 7, 2, 0.0, RoleTag::Clusterhead, Some(7));
        assert!(x.evaluate(t2, &mut t).is_none());
        assert_eq!(x.role(), Role::Clusterhead, "id 5 beats id 7 on ties");
    }

    #[test]
    fn plain_clusterhead_resigns_on_seeing_lower_undecided() {
        let now = SimTime::from_secs(2);
        let mut x = node(5, AlgorithmKind::LowestId);
        let mut t = table();
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Clusterhead);
        // Undecided node 1 passes by: plain lowest-id defers.
        hear(&mut t, now, 1, 0, 0.0, RoleTag::Undecided, None);
        let tr = x.evaluate(now, &mut t).unwrap();
        assert_eq!(x.role(), Role::Undecided);
        assert!(tr.is_clusterhead_change());

        // LCC in the same situation keeps the role.
        let mut y = node(5, AlgorithmKind::Lcc);
        let mut t2 = table();
        y.evaluate(now, &mut t2);
        hear(&mut t2, now, 1, 0, 0.0, RoleTag::Undecided, None);
        assert!(y.evaluate(now, &mut t2).is_none());
        assert_eq!(y.role(), Role::Clusterhead);
    }

    #[test]
    fn highest_degree_weight_tracks_degree() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::HighestDegree);
        let mut t = table();
        hear(&mut t, now, 1, 0, -1.0, RoleTag::Undecided, None);
        hear(&mut t, now, 2, 0, -1.0, RoleTag::Undecided, None);
        hear(&mut t, now, 3, 0, -1.0, RoleTag::Undecided, None);
        // Degree 3 → weight primary −3, lower than all neighbors' −1.
        let w = x.weight(&t);
        assert_eq!(w.primary(), -3.0);
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Clusterhead, "highest degree wins");
    }

    #[test]
    fn prepare_broadcast_computes_metric_and_advert() {
        let mut x = node(0, AlgorithmKind::Mobic);
        let mut t = table();
        let s = SimTime::from_secs;
        hear(&mut t, s(0), 1, 0, 0.0, RoleTag::Undecided, None);
        // +3 dB on the successive pair.
        t.record(
            s(2),
            Dbm::new(-57.0),
            &Hello {
                sender: n(1),
                seq: 1,
                payload: ClusterAdvert::initial(),
            },
        );
        let hello = x.prepare_broadcast(s(2), &mut t);
        assert_eq!(x.metric(), 9.0);
        assert_eq!(x.metric_samples(), 1);
        assert_eq!(hello.sender, n(0));
        assert_eq!(hello.seq, 0, "first broadcast carries sequence 0");
        assert_eq!(hello.payload.primary, 9.0);
        assert_eq!(hello.payload.role, RoleTag::Undecided);
        assert_eq!(x.next_seq(), 1);
    }

    #[test]
    fn prepare_broadcast_with_history_smoothing() {
        let mut cfg = ClusterConfig::paper_default(AlgorithmKind::Mobic);
        cfg.history_alpha = Some(0.5);
        let mut x = ClusterNode::new(n(0), cfg);
        let mut t = table();
        let s = SimTime::from_secs;
        hear(&mut t, s(0), 1, 0, 0.0, RoleTag::Undecided, None);
        t.record(
            s(2),
            Dbm::new(-57.0),
            &Hello {
                sender: n(1),
                seq: 1,
                payload: ClusterAdvert::initial(),
            },
        );
        let _ = x.prepare_broadcast(s(2), &mut t); // M = 9 adopted
        assert_eq!(x.metric(), 9.0);
        // Next interval: no fresh pair (stale) → raw 0, smoothed 4.5.
        let _ = x.prepare_broadcast(s(8), &mut t);
        assert_eq!(x.metric(), 4.5);
    }

    #[test]
    fn advert_reports_affiliation() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        x.evaluate(now, &mut t);
        let advert = x.prepare_broadcast(now, &mut t).payload;
        assert_eq!(advert.role, RoleTag::Member);
        assert_eq!(advert.ch, Some(n(4)));
    }

    #[test]
    fn gateway_detection() {
        let now = SimTime::from_secs(2);
        let mut x = node(9, AlgorithmKind::Lcc);
        let mut t = table();
        hear(&mut t, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        x.evaluate(now, &mut t);
        assert!(!x.is_gateway(&t), "one clusterhead is not enough");
        hear(&mut t, now, 6, 0, 0.0, RoleTag::Clusterhead, Some(6));
        assert!(x.is_gateway(&t));
        // Clusterheads are never gateways.
        let mut c = node(1, AlgorithmKind::Lcc);
        let mut t2 = table();
        c.evaluate(now, &mut t2);
        hear(&mut t2, now, 4, 0, 0.0, RoleTag::Clusterhead, Some(4));
        hear(&mut t2, now, 6, 0, 0.0, RoleTag::Clusterhead, Some(6));
        assert!(!c.is_gateway(&t2));
    }

    #[test]
    fn wca_weight_combines_mobility_and_degree() {
        let now = SimTime::from_secs(2);
        let x = node(9, AlgorithmKind::Wca);
        let mut t = table();
        // Zero metric, degree 2 → primary = 0 + 0.5·|2 − 8| = 3.
        hear(&mut t, now, 1, 0, 0.0, RoleTag::Undecided, None);
        hear(&mut t, now, 2, 0, 0.0, RoleTag::Undecided, None);
        assert_eq!(x.weight(&t).primary(), 3.0);
        assert!(AlgorithmKind::Wca.is_lcc_style());
        assert_eq!(AlgorithmKind::Wca.name(), "wca");
    }

    #[test]
    fn reset_wipes_role_state_but_keeps_sequence_numbers() {
        let now = SimTime::from_secs(2);
        let mut x = node(3, AlgorithmKind::Mobic);
        let mut t = table();
        hear(&mut t, now, 5, 0, 0.0, RoleTag::Undecided, None);
        let _ = x.prepare_broadcast(now, &mut t);
        let _ = x.prepare_broadcast(now + SimTime::from_secs(2), &mut t);
        x.evaluate(now, &mut t);
        assert_eq!(x.role(), Role::Clusterhead);
        assert_eq!(x.next_seq(), 2);

        let revive_at = SimTime::from_secs(30);
        x.reset(revive_at);
        assert_eq!(x.role(), Role::Undecided);
        assert_eq!(x.metric(), 0.0);
        assert_eq!(x.metric_samples(), 0);
        assert!(!x.election_is_stable(), "patience window restarted");
        // Sequence numbers continue — no stale-duplicate rejection.
        assert_eq!(x.next_seq(), 2);
        let h = x.prepare_broadcast(revive_at, &mut table());
        assert_eq!(h.seq, 2);
        assert_eq!(h.payload.role, RoleTag::Undecided);
    }

    #[test]
    fn evaluate_is_idempotent_when_nothing_changes() {
        let now = SimTime::from_secs(2);
        let mut x = node(3, AlgorithmKind::Mobic);
        let mut t = table();
        x.evaluate(now, &mut t);
        for k in 1..5 {
            assert!(x.evaluate(now + SimTime::from_secs(k), &mut t).is_none());
        }
    }
}
