//! Structure-of-arrays storage for per-node clustering state, plus
//! the dirty-set bookkeeping behind incremental reclustering.
//!
//! The scenario runner owns one [`ClusterNode`] state machine and one
//! [`ClusterTable`] per node. Keeping them in parallel vectors (rather
//! than a vector of per-node structs) keeps each access pattern dense:
//! the sampling pass walks only roles, the gateway count walks only
//! tables, and the hot hello path touches exactly one slot of each.
//!
//! [`NodeTable`] also tracks a per-node *dirty* flag: whether anything
//! an election can observe changed in the node's neighbor table since
//! its last evaluation. A record that adds a neighbor or changes a
//! stored advert dirties the slot; a pure power-history refresh does
//! not (elections never read power samples — the metric is computed in
//! `prepare_broadcast`, before evaluation). Combined with
//! [`ClusterNode::election_is_stable`], a clean slot can provably skip
//! its election, which is the incremental-reclustering fast path.

use mobic_net::{Hello, NodeId, RecordOutcome};
use mobic_radio::Dbm;
use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::{ClusterAdvert, ClusterConfig, ClusterNode, ClusterTable, RoleTransition};

/// Per-node clustering state in structure-of-arrays layout with
/// dirty-set election tracking and node-lifecycle (fault-injection)
/// flags. See the [module docs](self).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeTable {
    nodes: Vec<ClusterNode>,
    tables: Vec<ClusterTable>,
    /// `dirty[i]`: node `i`'s table changed in an election-relevant
    /// way since its last evaluation. Starts all-true so every node's
    /// first election always runs.
    dirty: Vec<bool>,
    /// `alive[i]`: node `i` is up. Dead nodes neither transmit nor
    /// receive nor hold elections; their neighbors expire them
    /// naturally when the hellos stop. Starts all-true.
    alive: Vec<bool>,
    /// `deaf[i]`: node `i`'s receive side is impaired — deliveries to
    /// it are dropped after the radio/loss stage.
    deaf: Vec<bool>,
    /// `mute[i]`: node `i`'s transmit side is impaired — it holds its
    /// hellos (and its metric freezes, since the metric is computed at
    /// broadcast time) but keeps receiving and evaluating.
    mute: Vec<bool>,
}

impl NodeTable {
    /// Creates state for nodes `0..n`, every slot dirty, every node
    /// alive and unimpaired.
    #[must_use]
    pub fn new(n: usize, cfg: ClusterConfig, neighbor_timeout: SimTime) -> Self {
        NodeTable {
            nodes: (0..n)
                .map(|i| ClusterNode::new(NodeId::new(i as u32), cfg))
                .collect(),
            tables: (0..n)
                .map(|_| ClusterTable::new(neighbor_timeout))
                .collect(),
            dirty: vec![true; n],
            alive: vec![true; n],
            deaf: vec![false; n],
            mute: vec![false; n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the table holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All cluster state machines, indexed by `NodeId::index`.
    #[must_use]
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// All neighbor tables, indexed by `NodeId::index`.
    #[must_use]
    pub fn tables(&self) -> &[ClusterTable] {
        &self.tables
    }

    /// Node `i`'s state machine.
    #[must_use]
    pub fn node(&self, i: usize) -> &ClusterNode {
        &self.nodes[i]
    }

    /// Node `i`'s neighbor table.
    #[must_use]
    pub fn table(&self, i: usize) -> &ClusterTable {
        &self.tables[i]
    }

    /// `true` if node `i`'s election inputs changed since its last
    /// evaluation.
    #[must_use]
    pub fn is_dirty(&self, i: usize) -> bool {
        self.dirty[i]
    }

    /// `true` if node `i` is up.
    #[must_use]
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// The full liveness bitmap, indexed by `NodeId::index` — handed
    /// to observers so sampling passes can skip dead nodes.
    #[must_use]
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of nodes currently up.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// `true` if node `i`'s receive side is impaired.
    #[must_use]
    pub fn is_deaf(&self, i: usize) -> bool {
        self.deaf[i]
    }

    /// `true` if node `i`'s transmit side is impaired.
    #[must_use]
    pub fn is_mute(&self, i: usize) -> bool {
        self.mute[i]
    }

    /// `true` if node `i` can commit a reception right now: alive and
    /// not deaf. Checked *after* the radio/loss stage so the loss
    /// model's RNG consumption is identical with and without faults.
    #[must_use]
    pub fn can_receive(&self, i: usize) -> bool {
        self.alive[i] && !self.deaf[i]
    }

    /// `true` if node `i` transmits its hellos: alive and not mute.
    #[must_use]
    pub fn can_transmit(&self, i: usize) -> bool {
        self.alive[i] && !self.mute[i]
    }

    /// Takes node `i` down without ceremony — used both for fail-stop
    /// crashes and for withholding late-joiners at setup. Clears any
    /// impairments (they belong to the dead interface) and wipes the
    /// node's neighbor table: a crashed node retains nothing.
    pub fn set_down(&mut self, i: usize) {
        self.alive[i] = false;
        self.deaf[i] = false;
        self.mute[i] = false;
        self.tables[i].clear();
        self.dirty[i] = true;
    }

    /// Brings node `i` up at `now` with protocol state factory-fresh:
    /// the neighbor table stays empty and the role state machine is
    /// [`ClusterNode::reset`] (keeping its hello sequence counter).
    /// Used for crash recovery and late joins.
    pub fn bring_up(&mut self, i: usize, now: SimTime) {
        self.alive[i] = true;
        self.deaf[i] = false;
        self.mute[i] = false;
        self.tables[i].clear();
        self.nodes[i].reset(now);
        self.dirty[i] = true;
    }

    /// Sets or clears node `i`'s receive-side impairment.
    pub fn set_deaf(&mut self, i: usize, deaf: bool) {
        self.deaf[i] = deaf;
    }

    /// Sets or clears node `i`'s transmit-side impairment.
    pub fn set_mute(&mut self, i: usize, mute: bool) {
        self.mute[i] = mute;
    }

    // lint:hot-path — per-hello entry points of the steady-state loop;
    // everything below runs for every (hello, receiver) pair.
    /// Records a received hello into node `i`'s table, flagging the
    /// slot dirty iff the record changed election-visible state (new
    /// neighbor or changed advert).
    pub fn record(&mut self, i: usize, at: SimTime, power: Dbm, hello: &Hello<ClusterAdvert>) {
        let outcome: RecordOutcome = self.tables[i].record_outcome(at, power, hello);
        if outcome.election_relevant() {
            self.dirty[i] = true;
        }
    }

    /// Expires stale neighbors from node `i`'s table at `now`,
    /// flagging the slot dirty if anything was removed. Call this at
    /// the node's hello instant, *before* the skip decision: entry
    /// expiry is the one table mutation that doesn't go through
    /// [`record`](Self::record).
    pub fn expire(&mut self, i: usize, now: SimTime) {
        if self.tables[i].expire_count(now) > 0 {
            self.dirty[i] = true;
        }
    }

    /// Runs node `i`'s [`ClusterNode::prepare_broadcast`] against its
    /// own table.
    pub fn prepare_broadcast(&mut self, i: usize, now: SimTime) -> Hello<ClusterAdvert> {
        self.nodes[i].prepare_broadcast(now, &mut self.tables[i])
    }

    /// Runs node `i`'s clustering evaluation and clears its dirty
    /// flag: after the call, the node's role is consistent with its
    /// table, so an unchanged table needs no re-evaluation (subject to
    /// [`ClusterNode::election_is_stable`]).
    pub fn evaluate(&mut self, i: usize, now: SimTime) -> Option<RoleTransition> {
        self.dirty[i] = false;
        self.nodes[i].evaluate(now, &mut self.tables[i])
    }

    /// `true` if node `i`'s election is provably a no-op right now:
    /// its table is clean since the last evaluation *and* its state
    /// machine is time-independent in its current role
    /// ([`ClusterNode::election_is_stable`]). Skipping is then
    /// bit-identical to evaluating —
    /// [`debug_assert_skip_sound`](Self::debug_assert_skip_sound)
    /// re-proves it on every skip in debug builds.
    #[must_use]
    pub fn can_skip_election(&self, i: usize) -> bool {
        !self.dirty[i] && self.nodes[i].election_is_stable()
    }
    // lint:end-hot-path (`debug_assert_skip_sound` clones on purpose —
    // it is debug-build-only proof machinery, not steady-state code)

    /// Debug-build proof obligation for a skipped election: actually
    /// evaluates a clone of node `i` and panics if the "provably
    /// no-op" election would have produced a transition after all.
    ///
    /// # Panics
    ///
    /// Panics if evaluating node `i` would change its role.
    #[cfg(debug_assertions)]
    pub fn debug_assert_skip_sound(&self, i: usize, now: SimTime) {
        let mut node = self.nodes[i].clone();
        let mut table = self.tables[i].clone();
        let tr = node.evaluate(now, &mut table);
        assert!(
            tr.is_none(),
            "skipped election for node {i} would have transitioned: {tr:?}"
        );
        assert_eq!(
            node.role(),
            self.nodes[i].role(),
            "skipped election for node {i} is not a role no-op"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlgorithmKind, Role, RoleTag};

    fn nt(n: usize, alg: AlgorithmKind) -> NodeTable {
        NodeTable::new(n, ClusterConfig::paper_default(alg), SimTime::from_secs(3))
    }

    fn hello(
        sender: u32,
        seq: u64,
        primary: f64,
        role: RoleTag,
        ch: Option<u32>,
    ) -> Hello<ClusterAdvert> {
        Hello {
            sender: NodeId::new(sender),
            seq,
            payload: ClusterAdvert {
                primary,
                role,
                ch: ch.map(NodeId::new),
            },
        }
    }

    #[test]
    fn starts_fully_dirty_and_evaluate_cleans() {
        let mut t = nt(3, AlgorithmKind::Mobic);
        assert!((0..3).all(|i| t.is_dirty(i)));
        t.evaluate(0, SimTime::from_secs(1));
        assert!(!t.is_dirty(0));
        assert!(t.is_dirty(1));
    }

    #[test]
    fn record_dirties_only_on_election_relevant_change() {
        let mut t = nt(2, AlgorithmKind::Mobic);
        let s = SimTime::from_secs;
        t.evaluate(0, s(1));
        // New neighbor: dirty.
        t.record(
            0,
            s(2),
            Dbm::new(-60.0),
            &hello(1, 0, 0.0, RoleTag::Undecided, None),
        );
        assert!(t.is_dirty(0));
        t.evaluate(0, s(2));
        // Same advert, fresh seq: power refresh only → clean.
        t.record(
            0,
            s(4),
            Dbm::new(-59.0),
            &hello(1, 1, 0.0, RoleTag::Undecided, None),
        );
        assert!(!t.is_dirty(0));
        // Changed advert: dirty again.
        t.record(
            0,
            s(6),
            Dbm::new(-59.0),
            &hello(1, 2, 0.0, RoleTag::Clusterhead, Some(1)),
        );
        assert!(t.is_dirty(0));
        // Stale duplicate: ignored, stays as-is after evaluation.
        t.evaluate(0, s(6));
        t.record(
            0,
            s(7),
            Dbm::new(-59.0),
            &hello(1, 2, 9.9, RoleTag::Undecided, None),
        );
        assert!(!t.is_dirty(0));
    }

    #[test]
    fn expire_dirties_when_entries_die() {
        let mut t = nt(2, AlgorithmKind::Mobic);
        let s = SimTime::from_secs;
        t.record(
            0,
            s(1),
            Dbm::new(-60.0),
            &hello(1, 0, 0.0, RoleTag::Undecided, None),
        );
        t.evaluate(0, s(1));
        t.expire(0, s(2)); // nothing stale yet
        assert!(!t.is_dirty(0));
        t.expire(0, s(60)); // TP long gone
        assert!(t.is_dirty(0));
        assert_eq!(t.table(0).degree(), 0);
    }

    #[test]
    fn lifecycle_flags_start_healthy_and_toggle() {
        let mut t = nt(3, AlgorithmKind::Mobic);
        let s = SimTime::from_secs;
        assert!((0..3).all(|i| t.is_alive(i) && t.can_receive(i) && t.can_transmit(i)));
        assert_eq!(t.alive_count(), 3);
        assert_eq!(t.alive(), &[true, true, true]);

        t.set_deaf(1, true);
        assert!(!t.can_receive(1) && t.can_transmit(1));
        t.set_mute(2, true);
        assert!(t.can_receive(2) && !t.can_transmit(2));

        // Crash wipes impairments and the neighbor table.
        t.record(
            1,
            s(1),
            Dbm::new(-60.0),
            &hello(0, 0, 0.0, RoleTag::Undecided, None),
        );
        t.set_down(1);
        assert!(!t.is_alive(1) && !t.is_deaf(1));
        assert!(!t.can_receive(1) && !t.can_transmit(1));
        assert_eq!(t.alive_count(), 2);
        assert_eq!(t.table(1).degree(), 0, "crash wiped the table");

        // Revival resets the role machine and restarts dirty.
        t.evaluate(1, s(2));
        t.bring_up(1, s(3));
        assert!(t.is_alive(1) && t.is_dirty(1));
        assert_eq!(t.node(1).role(), Role::Undecided);
    }

    #[test]
    fn skip_is_sound_whenever_claimed() {
        // Drive a 2-node interaction through every phase and check the
        // debug proof on each claimed skip.
        let mut t = nt(2, AlgorithmKind::Mobic);
        let s = SimTime::from_secs;
        for round in 0..8u64 {
            let now = s(2 * round + 2);
            for i in 0..2 {
                t.expire(i, now);
                let h = t.prepare_broadcast(i, now);
                let other = 1 - i;
                t.record(other, now, Dbm::new(-60.0), &h);
                if t.can_skip_election(i) {
                    t.debug_assert_skip_sound(i, now);
                } else {
                    t.evaluate(i, now);
                }
            }
        }
        // The pair converged: the lower id heads, the other joined.
        assert_eq!(t.node(0).role(), Role::Clusterhead);
        assert_eq!(t.node(1).role(), Role::Member { ch: NodeId::new(0) });
        // Converged and clean ⇒ both skippable, and provably so. The
        // proof must run at an instant where expiry has nothing to do
        // (the runner expires before every skip decision): within TP
        // of the last hellos, here.
        for i in 0..2 {
            assert!(t.can_skip_election(i), "node {i}");
            t.debug_assert_skip_sound(i, s(17));
        }
    }
}
