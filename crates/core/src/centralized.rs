//! Centralized reference clustering.
//!
//! On a *static* topology with fully propagated information, the
//! distributed lowest-weight election has a unique fixed point, which
//! this module computes directly: process nodes in increasing weight
//! order; a node becomes a clusterhead unless a lower-weight neighbor
//! already did, in which case it joins the lowest-weight such
//! clusterhead.
//!
//! This is the oracle used by integration tests (the distributed
//! engine must converge to it on static graphs) and by the Figure-1
//! reproduction.

use mobic_net::NodeId;

use crate::{Role, Weight};

/// An undirected adjacency structure over dense node ids `0..n`.
///
/// # Examples
///
/// ```
/// use mobic_core::centralized::Adjacency;
///
/// let mut adj = Adjacency::new(3);
/// adj.connect(0, 1);
/// assert!(adj.are_neighbors(0, 1));
/// assert!(!adj.are_neighbors(0, 2));
/// assert_eq!(adj.degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    n: usize,
    neighbors: Vec<Vec<usize>>,
}

impl Adjacency {
    /// Creates an edgeless graph over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Adjacency {
            n,
            neighbors: vec![Vec::new(); n],
        }
    }

    /// Builds the unit-disk graph of `positions` with link `range`:
    /// two nodes are neighbors iff their distance is at most `range`.
    #[must_use]
    pub fn unit_disk(positions: &[mobic_geom::Vec2], range: f64) -> Self {
        let mut adj = Adjacency::new(positions.len());
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if positions[i].distance(positions[j]) <= range {
                    adj.connect(i, j);
                }
            }
        }
        adj
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge `a – b` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range, or `a == b`.
    pub fn connect(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "node out of range");
        assert_ne!(a, b, "no self loops");
        if !self.neighbors[a].contains(&b) {
            self.neighbors[a].push(b);
            self.neighbors[b].push(a);
        }
    }

    /// `true` if `a` and `b` are directly connected.
    #[must_use]
    pub fn are_neighbors(&self, a: usize, b: usize) -> bool {
        self.neighbors[a].contains(&b)
    }

    /// The neighbor list of `a`.
    #[must_use]
    pub fn neighbors(&self, a: usize) -> &[usize] {
        &self.neighbors[a]
    }

    /// Degree of `a`.
    #[must_use]
    pub fn degree(&self, a: usize) -> usize {
        self.neighbors[a].len()
    }
}

/// Runs the centralized lowest-weight election. `weights[i]` is node
/// `i`'s weight; returns each node's converged [`Role`].
///
/// # Panics
///
/// Panics if `weights.len() != adj.len()`.
///
/// # Examples
///
/// ```
/// use mobic_core::centralized::{lowest_weight_clustering, Adjacency};
/// use mobic_core::{Role, Weight};
/// use mobic_net::NodeId;
///
/// // A 3-node chain 0 – 1 – 2 with id weights.
/// let mut adj = Adjacency::new(3);
/// adj.connect(0, 1);
/// adj.connect(1, 2);
/// let weights: Vec<Weight> =
///     (0..3).map(|i| Weight::new(0.0, NodeId::new(i))).collect();
/// let roles = lowest_weight_clustering(&weights, &adj);
/// assert_eq!(roles[0], Role::Clusterhead);
/// assert_eq!(roles[1], Role::Member { ch: NodeId::new(0) });
/// assert_eq!(roles[2], Role::Clusterhead); // out of 0's range
/// ```
#[must_use]
pub fn lowest_weight_clustering(weights: &[Weight], adj: &Adjacency) -> Vec<Role> {
    assert_eq!(
        weights.len(),
        adj.len(),
        "one weight per node required ({} weights, {} nodes)",
        weights.len(),
        adj.len()
    );
    let n = weights.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[a].cmp(&weights[b]));
    let mut roles = vec![Role::Undecided; n];
    for &i in &order {
        // The lowest-weight neighbor that already became a clusterhead.
        let best_ch = adj
            .neighbors(i)
            .iter()
            .filter(|&&j| roles[j].is_clusterhead())
            .min_by(|&&a, &&b| weights[a].cmp(&weights[b]));
        roles[i] = match best_ch {
            Some(&ch) => Role::Member {
                ch: weights[ch].id(),
            },
            None => Role::Clusterhead,
        };
    }
    roles
}

/// Lowest-**ID** clustering on a static graph — the paper's Figure-1
/// algorithm — implemented as lowest-weight with zero primaries.
///
/// `ids[i]` is the id of graph node `i`.
#[must_use]
pub fn lowest_id_clustering(ids: &[NodeId], adj: &Adjacency) -> Vec<Role> {
    let weights: Vec<Weight> = ids.iter().map(|&id| Weight::new(0.0, id)).collect();
    lowest_weight_clustering(&weights, adj)
}

/// Derives gateway status: a non-clusterhead that neighbors two or
/// more clusterheads.
#[must_use]
pub fn gateways(roles: &[Role], adj: &Adjacency) -> Vec<bool> {
    roles
        .iter()
        .enumerate()
        .map(|(i, r)| {
            !r.is_clusterhead()
                && adj
                    .neighbors(i)
                    .iter()
                    .filter(|&&j| roles[j].is_clusterhead())
                    .count()
                    >= 2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id_weights(n: u32) -> Vec<Weight> {
        (0..n).map(|i| Weight::new(0.0, NodeId::new(i))).collect()
    }

    #[test]
    fn empty_and_single() {
        let adj = Adjacency::new(0);
        assert!(lowest_weight_clustering(&[], &adj).is_empty());
        let adj = Adjacency::new(1);
        let roles = lowest_weight_clustering(&id_weights(1), &adj);
        assert_eq!(roles, vec![Role::Clusterhead]);
    }

    #[test]
    fn clique_elects_single_lowest() {
        let mut adj = Adjacency::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                adj.connect(i, j);
            }
        }
        let roles = lowest_weight_clustering(&id_weights(4), &adj);
        assert_eq!(roles[0], Role::Clusterhead);
        for r in &roles[1..] {
            assert_eq!(*r, Role::Member { ch: NodeId::new(0) });
        }
    }

    #[test]
    fn no_two_clusterheads_adjacent() {
        // Random-ish graph; Theorem 1 property must hold.
        let n = 30;
        let mut adj = Adjacency::new(n);
        let mut x = 7u64;
        for i in 0..n {
            for j in (i + 1)..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(5) {
                    adj.connect(i, j);
                }
            }
        }
        let weights: Vec<Weight> = (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                Weight::new(((x >> 40) % 100) as f64, NodeId::new(i as u32))
            })
            .collect();
        let roles = lowest_weight_clustering(&weights, &adj);
        for i in 0..n {
            for &j in adj.neighbors(i) {
                assert!(
                    !(roles[i].is_clusterhead() && roles[j].is_clusterhead()),
                    "adjacent clusterheads {i} and {j}"
                );
            }
        }
        // Every member's clusterhead is a neighbor.
        for i in 0..n {
            if let Role::Member { ch } = roles[i] {
                let ch_idx = weights.iter().position(|w| w.id() == ch).unwrap();
                assert!(
                    adj.are_neighbors(i, ch_idx),
                    "member {i} cannot hear its CH"
                );
                assert!(roles[ch_idx].is_clusterhead());
            }
        }
    }

    #[test]
    fn member_joins_lowest_weight_ch_in_range() {
        // 2 – 0 – 1 path, weights by id: 0 CH; 1 and 2 join 0.
        // Now make node 3 adjacent to both 1 (member) and nothing else:
        // 3 becomes CH even though 1 < 3.
        let mut adj = Adjacency::new(4);
        adj.connect(0, 1);
        adj.connect(0, 2);
        adj.connect(1, 3);
        let roles = lowest_id_clustering(&[0, 1, 2, 3].map(NodeId::new), &adj);
        assert_eq!(roles[0], Role::Clusterhead);
        assert_eq!(roles[1], Role::Member { ch: NodeId::new(0) });
        assert_eq!(roles[2], Role::Member { ch: NodeId::new(0) });
        assert_eq!(roles[3], Role::Clusterhead, "members do not head clusters");
    }

    #[test]
    fn mobility_weight_overrides_id() {
        // Clique of 3; node 2 is calmest → clusterhead despite highest id.
        let mut adj = Adjacency::new(3);
        adj.connect(0, 1);
        adj.connect(0, 2);
        adj.connect(1, 2);
        let weights = vec![
            Weight::new(9.0, NodeId::new(0)),
            Weight::new(5.0, NodeId::new(1)),
            Weight::new(0.5, NodeId::new(2)),
        ];
        let roles = lowest_weight_clustering(&weights, &adj);
        assert_eq!(roles[2], Role::Clusterhead);
        assert_eq!(roles[0], Role::Member { ch: NodeId::new(2) });
        assert_eq!(roles[1], Role::Member { ch: NodeId::new(2) });
    }

    #[test]
    fn unit_disk_construction() {
        use mobic_geom::Vec2;
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(5.0, 0.0),
            Vec2::new(20.0, 0.0),
        ];
        let adj = Adjacency::unit_disk(&positions, 10.0);
        assert!(adj.are_neighbors(0, 1));
        assert!(!adj.are_neighbors(0, 2));
        assert!(!adj.are_neighbors(1, 2)); // 15 m apart
    }

    #[test]
    fn gateway_derivation() {
        // 0 and 2 are CHs; 1 hears both → gateway.
        let mut adj = Adjacency::new(3);
        adj.connect(0, 1);
        adj.connect(1, 2);
        let roles = lowest_id_clustering(&[0, 1, 2].map(NodeId::new), &adj);
        assert_eq!(roles[0], Role::Clusterhead);
        assert_eq!(roles[2], Role::Clusterhead);
        let gw = gateways(&roles, &adj);
        assert_eq!(gw, vec![false, true, false]);
    }

    #[test]
    fn paper_figure_1_topology() {
        // The 10-node schematic of Figure 1: three clusters headed by
        // 1, 2 and 4; nodes 8 and 9 are gateways. We reconstruct a
        // connected topology consistent with the figure's description:
        //
        //   Cluster A: head 1; members 5, 8.
        //   Cluster B: head 2; members 3, 8, 9 (8 overlaps A/B).
        //   Cluster C: head 4; members 6, 7, 9, 10 (9 overlaps B/C).
        //
        // Edges (graph indices = id − 1):
        let ids: Vec<NodeId> = (1..=10).map(NodeId::new).collect();
        let mut adj = Adjacency::new(10);
        let e = |adj: &mut Adjacency, a: u32, b: u32| {
            adj.connect((a - 1) as usize, (b - 1) as usize);
        };
        // Cluster A around head 1.
        e(&mut adj, 1, 5);
        e(&mut adj, 1, 8);
        // Cluster B around head 2.
        e(&mut adj, 2, 3);
        e(&mut adj, 2, 8);
        e(&mut adj, 2, 9);
        // Cluster C around head 4.
        e(&mut adj, 4, 6);
        e(&mut adj, 4, 7);
        e(&mut adj, 4, 9);
        e(&mut adj, 4, 10);
        // Intra-cluster extra links keeping the graph connected.
        e(&mut adj, 5, 8);
        e(&mut adj, 9, 10);
        e(&mut adj, 6, 7);

        let roles = lowest_id_clustering(&ids, &adj);
        let ch_ids: Vec<u32> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_clusterhead())
            .map(|(i, _)| i as u32 + 1)
            .collect();
        assert_eq!(ch_ids, vec![1, 2, 4], "Figure 1 clusterheads");
        let gw = gateways(&roles, &adj);
        let gw_ids: Vec<u32> = gw
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            .map(|(i, _)| i as u32 + 1)
            .collect();
        assert_eq!(gw_ids, vec![8, 9], "Figure 1 gateways");
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn mismatched_lengths_panic() {
        let adj = Adjacency::new(3);
        let _ = lowest_weight_clustering(&id_weights(2), &adj);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let mut adj = Adjacency::new(2);
        adj.connect(1, 1);
    }
}
