//! The relative and aggregate local mobility metrics (§3.1), plus the
//! history-smoothing extension sketched in the paper's future work
//! (§5).

use mobic_net::NeighborTable;
use mobic_radio::Dbm;
use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

/// How the pairwise relative-mobility samples are folded into the
/// aggregate `M`.
///
/// The paper uses the variance about zero ([`Var0`](Self::Var0),
/// Eq. 2). Because `M_rel` lives on a log scale, a single close
/// passing neighbor can contribute a sample an order of magnitude
/// larger than the rest and dominate the mean of squares; the robust
/// [`MedianSq`](Self::MedianSq) alternative resists exactly that
/// pollution (see the X4 highway analysis in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricAggregation {
    /// The paper's Eq. 2: mean of squares (`var₀`).
    #[default]
    Var0,
    /// Median of squares — robust to single-pair outliers.
    MedianSq,
    /// Maximum square — the most pessimistic reading.
    MaxSq,
}

/// Folds pairwise samples per the chosen [`MetricAggregation`].
/// Empty input yields `0.0` for every variant.
///
/// # Examples
///
/// ```
/// use mobic_core::metric::{aggregate_with, MetricAggregation};
///
/// let samples = [1.0, -1.0, 10.0]; // one outlier
/// assert!((aggregate_with(&samples, MetricAggregation::Var0) - 34.0).abs() < 1e-12);
/// assert_eq!(aggregate_with(&samples, MetricAggregation::MedianSq), 1.0);
/// assert_eq!(aggregate_with(&samples, MetricAggregation::MaxSq), 100.0);
/// ```
#[must_use]
pub fn aggregate_with(samples: &[f64], how: MetricAggregation) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut squares: Vec<f64> = samples.iter().map(|s| s * s).collect();
    match how {
        MetricAggregation::Var0 => squares.iter().sum::<f64>() / squares.len() as f64,
        MetricAggregation::MedianSq => {
            squares.sort_by(|a, b| a.partial_cmp(b).expect("squares are finite"));
            let n = squares.len();
            if n % 2 == 1 {
                squares[n / 2]
            } else {
                0.5 * (squares[n / 2 - 1] + squares[n / 2])
            }
        }
        MetricAggregation::MaxSq => squares.iter().copied().fold(0.0, f64::max),
    }
}

/// Pairwise relative mobility from two successive received-power
/// measurements of the same neighbor:
///
/// `M_rel = 10·log10(RxPr_new / RxPr_old)` — which, with powers already
/// in dBm, is simply their difference in dB.
///
/// Negative values mean the nodes are drifting apart, positive values
/// mean they are approaching; zero means the received power (and under
/// free-space propagation, the distance) is unchanged.
///
/// # Examples
///
/// ```
/// use mobic_core::metric::relative_mobility;
/// use mobic_radio::Dbm;
///
/// // Power dropped 4 dB: moving apart.
/// assert_eq!(relative_mobility(Dbm::new(-60.0), Dbm::new(-64.0)), -4.0);
/// // Unchanged power: zero relative mobility.
/// assert_eq!(relative_mobility(Dbm::new(-70.0), Dbm::new(-70.0)), 0.0);
/// ```
#[must_use]
pub fn relative_mobility(rx_old: Dbm, rx_new: Dbm) -> f64 {
    (rx_new - rx_old).db()
}

/// Aggregate local mobility: the variance **about zero** (i.e. the
/// mean of squares, `E[M_rel²]`) of the pairwise relative mobility
/// samples — Equation (2) of the paper.
///
/// An empty sample set yields `0.0`, matching the paper's
/// initialization ("M … initialized to 0 at the beginning of
/// operations") and its treatment of isolated nodes.
///
/// # Examples
///
/// ```
/// use mobic_core::metric::aggregate_mobility;
///
/// assert_eq!(aggregate_mobility([3.0, -4.0]), 12.5);
/// assert_eq!(aggregate_mobility([]), 0.0);
/// ```
#[must_use]
pub fn aggregate_mobility(samples: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for s in samples {
        sum_sq += s * s;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum_sq / n as f64
    }
}

/// The result of a node's metric computation: the aggregate value and
/// how many neighbors qualified (delivered two successive hellos).
///
/// The sample count matters for interpreting the metric: the paper
/// notes the aggregate is imprecise in sparse neighborhoods (§3.1,
/// §4.2), which is exactly why MOBIC underperforms at small
/// transmission ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateMetric {
    /// `M_Y`, the variance-about-zero of the pairwise samples.
    pub value: f64,
    /// Number of neighbors that contributed a sample.
    pub samples: usize,
}

/// Computes a node's aggregate local mobility from its neighbor table,
/// applying the paper's exclusion heuristic: only neighbors whose last
/// two receptions came from **consecutive** hello sequence numbers
/// *and* whose most recent reception is no older than `max_age`
/// contribute. (`max_age` is typically the broadcast interval plus
/// jitter slack; entry expiry via the timeout period has already
/// removed long-silent neighbors.)
///
/// # Examples
///
/// ```
/// use mobic_core::metric::table_mobility;
/// use mobic_net::{Hello, NeighborTable, NodeId};
/// use mobic_radio::Dbm;
/// use mobic_sim::SimTime;
///
/// let mut t: NeighborTable<()> = NeighborTable::new(SimTime::from_secs(3));
/// let s = |x| SimTime::from_secs(x);
/// t.record(s(0), Dbm::new(-60.0), &Hello { sender: NodeId::new(1), seq: 0, payload: () });
/// t.record(s(2), Dbm::new(-57.0), &Hello { sender: NodeId::new(1), seq: 1, payload: () });
/// let m = table_mobility(&t, s(2), SimTime::from_secs(3));
/// assert_eq!(m.samples, 1);
/// assert_eq!(m.value, 9.0); // (+3 dB)²
/// ```
#[must_use]
pub fn table_mobility<P>(
    table: &NeighborTable<P>,
    now: SimTime,
    max_age: SimTime,
) -> AggregateMetric {
    table_mobility_with(table, now, max_age, MetricAggregation::Var0)
}

/// [`table_mobility`] with an explicit [`MetricAggregation`] — the
/// robust-aggregation ablation entry point.
///
/// `Var0` and `MaxSq` stream over the table without allocating, in the
/// same id order (and therefore the same floating-point operation
/// order) as folding a collected sample vector — this runs once per
/// hello broadcast, on the zero-allocation hot path. `MedianSq` needs
/// the full sample set to sort and still collects.
#[must_use]
pub fn table_mobility_with<P>(
    table: &NeighborTable<P>,
    now: SimTime,
    max_age: SimTime,
    how: MetricAggregation,
) -> AggregateMetric {
    if how == MetricAggregation::MedianSq {
        let mut samples = Vec::new();
        for (_, entry) in table.iter() {
            if let Some((old, new)) = entry.successive_pair() {
                if now.saturating_sub(new.at) <= max_age {
                    samples.push(relative_mobility(old.power, new.power));
                }
            }
        }
        return AggregateMetric {
            value: aggregate_with(&samples, how),
            samples: samples.len(),
        };
    }
    let mut sum_sq = 0.0;
    let mut max_sq = 0.0f64;
    let mut n = 0usize;
    for (_, entry) in table.iter() {
        if let Some((old, new)) = entry.successive_pair() {
            if now.saturating_sub(new.at) <= max_age {
                let s = relative_mobility(old.power, new.power);
                let sq = s * s;
                sum_sq += sq;
                max_sq = max_sq.max(sq);
                n += 1;
            }
        }
    }
    let value = if n == 0 {
        0.0
    } else {
        match how {
            MetricAggregation::Var0 => sum_sq / n as f64,
            MetricAggregation::MaxSq => max_sq,
            MetricAggregation::MedianSq => unreachable!("handled above"),
        }
    };
    AggregateMetric { value, samples: n }
}

/// Exponentially weighted moving average over successive aggregate
/// metric computations — the paper's §5 suggestion that "keeping some
/// history information about the mobility values may yield more stable
/// metrics".
///
/// `alpha` is the weight of history: the smoothed value after an
/// update is `alpha·previous + (1−alpha)·new`. `alpha = 0` reproduces
/// the paper's memoryless metric.
///
/// # Examples
///
/// ```
/// use mobic_core::metric::MetricSmoother;
///
/// let mut s = MetricSmoother::new(0.5);
/// assert_eq!(s.update(10.0), 10.0); // first sample adopted wholesale
/// assert_eq!(s.update(0.0), 5.0);
/// assert_eq!(s.update(0.0), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSmoother {
    alpha: f64,
    state: Option<f64>,
}

impl MetricSmoother {
    /// Creates a smoother with history weight `alpha ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1)`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "alpha must be in [0, 1), got {alpha}"
        );
        MetricSmoother { alpha, state: None }
    }

    /// Feeds a fresh aggregate value, returning the smoothed metric.
    pub fn update(&mut self, value: f64) -> f64 {
        let next = match self.state {
            None => value,
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * value,
        };
        self.state = Some(next);
        next
    }

    /// The current smoothed value, if any update has happened.
    #[must_use]
    pub fn current(&self) -> Option<f64> {
        self.state
    }

    /// Resets the smoother to its initial empty state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_net::{Hello, NodeId};

    #[test]
    fn relative_mobility_signs() {
        // Approaching: new power higher.
        assert!(relative_mobility(Dbm::new(-70.0), Dbm::new(-60.0)) > 0.0);
        // Receding: new power lower.
        assert!(relative_mobility(Dbm::new(-60.0), Dbm::new(-70.0)) < 0.0);
        assert_eq!(relative_mobility(Dbm::new(-65.0), Dbm::new(-65.0)), 0.0);
    }

    #[test]
    fn relative_mobility_is_power_ratio_in_db() {
        // 10x power increase = +10 dB.
        let old = Dbm::from_milliwatts(1e-6);
        let new = Dbm::from_milliwatts(1e-5);
        assert!((relative_mobility(old, new) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn friis_doubling_distance_gives_minus_six_db() {
        // Under the inverse-square law, doubling distance quarters the
        // power: M_rel = 10·log10(1/4) ≈ −6.02.
        let ratio_db = 10.0 * 0.25_f64.log10();
        let old = Dbm::new(-60.0);
        let new = Dbm::new(-60.0 + ratio_db);
        assert!((relative_mobility(old, new) + 6.0206).abs() < 1e-3);
    }

    #[test]
    fn aggregate_is_mean_of_squares_not_variance() {
        // Samples with nonzero mean: classic variance would subtract
        // the mean; var₀ must not.
        let samples = [2.0, 2.0, 2.0];
        assert_eq!(aggregate_mobility(samples), 4.0);
    }

    #[test]
    fn aggregate_of_empty_is_zero() {
        assert_eq!(aggregate_mobility(std::iter::empty()), 0.0);
    }

    #[test]
    fn aggregate_single_sample() {
        assert_eq!(aggregate_mobility([-3.0]), 9.0);
    }

    #[test]
    fn aggregate_is_symmetric_in_sign() {
        assert_eq!(
            aggregate_mobility([5.0, -5.0]),
            aggregate_mobility([5.0, 5.0])
        );
    }

    #[test]
    fn low_aggregate_means_low_relative_motion() {
        let calm = aggregate_mobility([0.1, -0.2, 0.05]);
        let wild = aggregate_mobility([8.0, -6.0, 7.0]);
        assert!(calm < wild);
    }

    fn hello(sender: u32, seq: u64) -> Hello<()> {
        Hello {
            sender: NodeId::new(sender),
            seq,
            payload: (),
        }
    }

    #[test]
    fn table_mobility_uses_only_successive_pairs() {
        let mut t: NeighborTable<()> = NeighborTable::new(SimTime::from_secs(3));
        let s = SimTime::from_secs;
        // Neighbor 1: successive pair, +2 dB.
        t.record(s(0), Dbm::new(-60.0), &hello(1, 0));
        t.record(s(2), Dbm::new(-58.0), &hello(1, 1));
        // Neighbor 2: gap in sequence numbers (lost hello) — excluded.
        t.record(s(0), Dbm::new(-60.0), &hello(2, 0));
        t.record(s(2), Dbm::new(-50.0), &hello(2, 2));
        // Neighbor 3: only one reception — excluded.
        t.record(s(2), Dbm::new(-55.0), &hello(3, 0));
        let m = table_mobility(&t, s(2), SimTime::from_secs(3));
        assert_eq!(m.samples, 1);
        assert_eq!(m.value, 4.0);
    }

    #[test]
    fn table_mobility_respects_max_age() {
        let mut t: NeighborTable<()> = NeighborTable::new(SimTime::from_secs(100));
        let s = SimTime::from_secs;
        t.record(s(0), Dbm::new(-60.0), &hello(1, 0));
        t.record(s(2), Dbm::new(-58.0), &hello(1, 1));
        // At t=10 with max_age=3 the pair is stale.
        let m = table_mobility(&t, s(10), SimTime::from_secs(3));
        assert_eq!(m.samples, 0);
        assert_eq!(m.value, 0.0);
        // With a generous max_age it counts.
        let m = table_mobility(&t, s(10), SimTime::from_secs(20));
        assert_eq!(m.samples, 1);
    }

    #[test]
    fn table_mobility_averages_across_neighbors() {
        let mut t: NeighborTable<()> = NeighborTable::new(SimTime::from_secs(3));
        let s = SimTime::from_secs;
        t.record(s(0), Dbm::new(-60.0), &hello(1, 0));
        t.record(s(2), Dbm::new(-57.0), &hello(1, 1)); // +3 → 9
        t.record(s(0), Dbm::new(-60.0), &hello(2, 0));
        t.record(s(2), Dbm::new(-64.0), &hello(2, 1)); // −4 → 16
        let m = table_mobility(&t, s(2), SimTime::from_secs(3));
        assert_eq!(m.samples, 2);
        assert_eq!(m.value, 12.5);
    }

    #[test]
    fn aggregation_variants_agree_on_singletons() {
        for how in [
            MetricAggregation::Var0,
            MetricAggregation::MedianSq,
            MetricAggregation::MaxSq,
        ] {
            assert_eq!(aggregate_with(&[-3.0], how), 9.0, "{how:?}");
            assert_eq!(aggregate_with(&[], how), 0.0, "{how:?}");
        }
    }

    #[test]
    fn median_resists_single_outlier() {
        // Nine calm samples plus one screaming pass-by.
        let mut samples = vec![0.5; 9];
        samples.push(30.0);
        let var0 = aggregate_with(&samples, MetricAggregation::Var0);
        let med = aggregate_with(&samples, MetricAggregation::MedianSq);
        assert!(var0 > 90.0, "mean of squares dominated: {var0}");
        assert_eq!(med, 0.25, "median untouched by the outlier");
    }

    #[test]
    fn table_mobility_with_median() {
        let mut t: NeighborTable<()> = NeighborTable::new(SimTime::from_secs(3));
        let s = SimTime::from_secs;
        // +1, +2, +9 dB pairs from three neighbors.
        for (id, delta) in [(1u32, 1.0), (2, 2.0), (3, 9.0)] {
            t.record(s(0), Dbm::new(-60.0), &hello(id, 0));
            t.record(s(2), Dbm::new(-60.0 + delta), &hello(id, 1));
        }
        let med = table_mobility_with(&t, s(2), s(3), MetricAggregation::MedianSq);
        assert_eq!(med.samples, 3);
        assert_eq!(med.value, 4.0);
        let max = table_mobility_with(&t, s(2), s(3), MetricAggregation::MaxSq);
        assert_eq!(max.value, 81.0);
    }

    #[test]
    fn streaming_aggregation_bitwise_matches_collected_fold() {
        // table_mobility_with streams Var0/MaxSq; the result must be
        // bit-identical to collecting the samples and folding them,
        // since RunResult bytes depend on it.
        let mut t: NeighborTable<()> = NeighborTable::new(SimTime::from_secs(100));
        let s = SimTime::from_secs;
        for (i, delta) in [0.3, -7.1, 2.44, 11.02, -0.001, 5.5].iter().enumerate() {
            let id = i as u32 + 1;
            t.record(s(0), Dbm::new(-60.0), &hello(id, 0));
            t.record(s(2), Dbm::new(-60.0 + delta), &hello(id, 1));
        }
        let mut samples = Vec::new();
        for (_, entry) in t.iter() {
            let (old, new) = entry.successive_pair().unwrap();
            samples.push(relative_mobility(old.power, new.power));
        }
        for how in [
            MetricAggregation::Var0,
            MetricAggregation::MaxSq,
            MetricAggregation::MedianSq,
        ] {
            let got = table_mobility_with(&t, s(2), s(3), how);
            assert_eq!(got.samples, samples.len(), "{how:?}");
            assert_eq!(
                got.value.to_bits(),
                aggregate_with(&samples, how).to_bits(),
                "{how:?}"
            );
        }
    }

    #[test]
    fn smoother_alpha_zero_is_memoryless() {
        let mut sm = MetricSmoother::new(0.0);
        assert_eq!(sm.update(7.0), 7.0);
        assert_eq!(sm.update(3.0), 3.0);
        assert_eq!(sm.current(), Some(3.0));
    }

    #[test]
    fn smoother_converges_to_constant_input() {
        let mut sm = MetricSmoother::new(0.9);
        sm.update(100.0);
        let mut last = 100.0;
        for _ in 0..200 {
            last = sm.update(5.0);
        }
        assert!((last - 5.0).abs() < 1e-6);
    }

    #[test]
    fn smoother_reset() {
        let mut sm = MetricSmoother::new(0.5);
        sm.update(10.0);
        sm.reset();
        assert_eq!(sm.current(), None);
        assert_eq!(sm.update(2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn smoother_rejects_alpha_one() {
        let _ = MetricSmoother::new(1.0);
    }
}
