//! Theorem-1 invariant checkers.
//!
//! The paper proves (Theorem 1) that with totally ordered weights the
//! clustering yields (a) clusters of diameter at most 2 hops and (b) no
//! two clusterheads within range of each other, in a stable state.
//! These functions verify those properties on a topology snapshot; the
//! integration tests assert them after the distributed engine settles
//! on static graphs, and property tests assert them for the
//! centralized reference on random graphs.

use mobic_net::NodeId;

use crate::centralized::Adjacency;
use crate::Role;

/// A violation of the Theorem-1 cluster structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two clusterheads are direct neighbors.
    AdjacentClusterheads(usize, usize),
    /// A member's clusterhead is not its direct neighbor (cluster
    /// diameter would exceed 2 hops).
    MemberCannotHearClusterhead {
        /// The member's graph index.
        member: usize,
        /// The clusterhead it claims.
        ch: NodeId,
    },
    /// A member claims a clusterhead that is not actually in the
    /// clusterhead role.
    DanglingAffiliation {
        /// The member's graph index.
        member: usize,
        /// The claimed clusterhead.
        ch: NodeId,
    },
    /// A node is still undecided (the algorithm has not converged).
    Undecided(usize),
}

/// Checks the full Theorem-1 structure of a converged snapshot:
/// every node decided, members affiliated with in-range clusterheads,
/// and no two clusterheads adjacent. `ids[i]` gives graph node `i`'s
/// node id. Returns all violations (empty = invariants hold).
///
/// # Panics
///
/// Panics if slice lengths disagree with the adjacency size.
///
/// # Examples
///
/// ```
/// use mobic_core::centralized::{lowest_id_clustering, Adjacency};
/// use mobic_core::invariants::check_theorem1;
/// use mobic_net::NodeId;
///
/// let ids: Vec<NodeId> = (0..5).map(NodeId::new).collect();
/// let mut adj = Adjacency::new(5);
/// for i in 1..5 { adj.connect(0, i); }
/// let roles = lowest_id_clustering(&ids, &adj);
/// assert!(check_theorem1(&roles, &ids, &adj).is_empty());
/// ```
#[must_use]
pub fn check_theorem1(roles: &[Role], ids: &[NodeId], adj: &Adjacency) -> Vec<Violation> {
    assert_eq!(roles.len(), adj.len(), "one role per node");
    assert_eq!(ids.len(), adj.len(), "one id per node");
    let mut violations = Vec::new();
    let index_of = |id: NodeId| ids.iter().position(|&x| x == id);
    for (i, role) in roles.iter().enumerate() {
        match role {
            Role::Undecided => violations.push(Violation::Undecided(i)),
            Role::Clusterhead => {
                for &j in adj.neighbors(i) {
                    if j > i && roles[j].is_clusterhead() {
                        violations.push(Violation::AdjacentClusterheads(i, j));
                    }
                }
            }
            Role::Member { ch } => match index_of(*ch) {
                Some(ch_idx) if roles[ch_idx].is_clusterhead() => {
                    if !adj.are_neighbors(i, ch_idx) {
                        violations
                            .push(Violation::MemberCannotHearClusterhead { member: i, ch: *ch });
                    }
                }
                _ => violations.push(Violation::DanglingAffiliation { member: i, ch: *ch }),
            },
        }
    }
    violations
}

/// The number of clusters in a snapshot (= number of clusterheads),
/// the metric of the paper's Figure 4.
#[must_use]
pub fn cluster_count(roles: &[Role]) -> usize {
    roles.iter().filter(|r| r.is_clusterhead()).count()
}

/// The maximum hop distance between any two members of the same
/// cluster, over all clusters (should be ≤ 2 per Theorem 1). Nodes
/// are grouped by their cluster (clusterhead id); distance is measured
/// in the full topology.
///
/// Returns `None` when there is no cluster with ≥ 2 nodes.
#[must_use]
pub fn max_cluster_diameter(roles: &[Role], ids: &[NodeId], adj: &Adjacency) -> Option<usize> {
    use std::collections::{BTreeMap, VecDeque};
    let mut clusters: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, role) in roles.iter().enumerate() {
        if let Some(c) = role.cluster_of(ids[i]) {
            clusters.entry(c).or_default().push(i);
        }
    }
    let mut max_d = None;
    for members in clusters.values() {
        if members.len() < 2 {
            continue;
        }
        for &src in members {
            // BFS from src.
            let mut dist = vec![usize::MAX; adj.len()];
            dist[src] = 0;
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                for &v in adj.neighbors(u) {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            for &dst in members {
                if dst != src && dist[dst] != usize::MAX {
                    max_d = Some(max_d.map_or(dist[dst], |m: usize| m.max(dist[dst])));
                }
            }
        }
    }
    max_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{lowest_id_clustering, lowest_weight_clustering};
    use crate::Weight;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn valid_star_has_no_violations() {
        let mut adj = Adjacency::new(4);
        for i in 1..4 {
            adj.connect(0, i);
        }
        let ids = ids(4);
        let roles = lowest_id_clustering(&ids, &adj);
        assert!(check_theorem1(&roles, &ids, &adj).is_empty());
        assert_eq!(cluster_count(&roles), 1);
        assert_eq!(max_cluster_diameter(&roles, &ids, &adj), Some(2));
    }

    #[test]
    fn detects_adjacent_clusterheads() {
        let mut adj = Adjacency::new(2);
        adj.connect(0, 1);
        let roles = vec![Role::Clusterhead, Role::Clusterhead];
        let v = check_theorem1(&roles, &ids(2), &adj);
        assert_eq!(v, vec![Violation::AdjacentClusterheads(0, 1)]);
    }

    #[test]
    fn detects_unreachable_clusterhead() {
        let adj = Adjacency::new(2); // no edges
        let roles = vec![Role::Clusterhead, Role::Member { ch: NodeId::new(0) }];
        let v = check_theorem1(&roles, &ids(2), &adj);
        assert_eq!(
            v,
            vec![Violation::MemberCannotHearClusterhead {
                member: 1,
                ch: NodeId::new(0)
            }]
        );
    }

    #[test]
    fn detects_dangling_affiliation() {
        let mut adj = Adjacency::new(2);
        adj.connect(0, 1);
        // Node 1 claims CH 0, but 0 is itself a member of nowhere.
        let roles = vec![
            Role::Member { ch: NodeId::new(1) },
            Role::Member { ch: NodeId::new(0) },
        ];
        let v = check_theorem1(&roles, &ids(2), &adj);
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0],
            Violation::DanglingAffiliation { member: 0, .. }
        ));
    }

    #[test]
    fn detects_undecided() {
        let adj = Adjacency::new(1);
        let v = check_theorem1(&[Role::Undecided], &ids(1), &adj);
        assert_eq!(v, vec![Violation::Undecided(0)]);
    }

    #[test]
    fn random_graphs_satisfy_theorem1() {
        let mut x = 99u64;
        for trial in 0..20 {
            let n = 20 + (trial % 10);
            let mut adj = Adjacency::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (x >> 33).is_multiple_of(4) {
                        adj.connect(i, j);
                    }
                }
            }
            let ids: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
            let weights: Vec<Weight> = ids
                .iter()
                .map(|&id| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Weight::new(((x >> 40) % 50) as f64 / 10.0, id)
                })
                .collect();
            let roles = lowest_weight_clustering(&weights, &adj);
            let v = check_theorem1(&roles, &ids, &adj);
            assert!(v.is_empty(), "trial {trial}: {v:?}");
            if let Some(d) = max_cluster_diameter(&roles, &ids, &adj) {
                assert!(d <= 2, "trial {trial}: diameter {d}");
            }
        }
    }

    #[test]
    fn cluster_count_counts_heads() {
        let roles = vec![
            Role::Clusterhead,
            Role::Member { ch: NodeId::new(0) },
            Role::Clusterhead,
            Role::Undecided,
        ];
        assert_eq!(cluster_count(&roles), 2);
    }

    #[test]
    fn diameter_none_for_singletons() {
        let adj = Adjacency::new(2);
        let roles = vec![Role::Clusterhead, Role::Clusterhead];
        assert_eq!(max_cluster_diameter(&roles, &ids(2), &adj), None);
    }
}
