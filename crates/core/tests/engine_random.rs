//! Property tests driving the clustering state machine with random
//! event sequences (hellos with arbitrary adverts, expiries, time
//! jumps) and checking that its *local* invariants hold no matter
//! what the network throws at it.

use mobic_core::{
    AlgorithmKind, ClusterAdvert, ClusterConfig, ClusterNode, ClusterTable, Role, RoleTag,
};
use mobic_net::{Hello, NodeId};
use mobic_radio::Dbm;
use mobic_sim::SimTime;
use proptest::prelude::*;

/// One scripted input to the node under test.
#[derive(Debug, Clone)]
enum Event {
    /// A hello from neighbor `id` with the given advert fields.
    Hear {
        id: u32,
        primary_centi: i32,
        role: u8,
        ch: Option<u32>,
    },
    /// Advance time by `ds` seconds and evaluate.
    Evaluate { ds: u8 },
    /// Advance time a lot (everyone expires) and evaluate.
    BigSilence,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (1u32..8, -500i32..2000, 0u8..3, prop::option::of(1u32..8)).prop_map(
            |(id, primary_centi, role, ch)| Event::Hear {
                id,
                primary_centi,
                role,
                ch,
            }
        ),
        (0u8..6).prop_map(|ds| Event::Evaluate { ds }),
        Just(Event::BigSilence),
    ]
}

fn role_tag(code: u8) -> RoleTag {
    match code {
        0 => RoleTag::Undecided,
        1 => RoleTag::Clusterhead,
        _ => RoleTag::Member,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever happens, after an `evaluate` the node's state is
    /// locally consistent:
    /// * a member's clusterhead is a *live* neighbor that advertised
    ///   the clusterhead role in its latest hello;
    /// * roles are never `Member { ch: self }`;
    /// * transition reports match actual state changes.
    #[test]
    fn local_invariants_hold_under_arbitrary_inputs(
        alg_pick in 0usize..4,
        events in prop::collection::vec(event_strategy(), 1..60),
    ) {
        let alg = AlgorithmKind::ALL[alg_pick];
        let me = NodeId::new(0);
        let mut node = ClusterNode::new(me, ClusterConfig::paper_default(alg));
        let mut table = ClusterTable::new(SimTime::from_secs(3));
        let mut now = SimTime::from_secs(1);
        let mut seqs = std::collections::HashMap::<u32, u64>::new();

        for ev in events {
            match ev {
                Event::Hear { id, primary_centi, role, ch } => {
                    let seq = seqs.entry(id).or_insert(0);
                    let hello = Hello {
                        sender: NodeId::new(id),
                        seq: *seq,
                        payload: ClusterAdvert {
                            primary: f64::from(primary_centi) / 100.0,
                            role: role_tag(role),
                            ch: ch.map(NodeId::new),
                        },
                    };
                    *seq += 1;
                    table.record(now, Dbm::new(-60.0), &hello);
                }
                Event::Evaluate { ds } => {
                    now += SimTime::from_secs(u64::from(ds));
                    check_after_evaluate(&mut node, now, &mut table)?;
                }
                Event::BigSilence => {
                    now += SimTime::from_secs(100);
                    check_after_evaluate(&mut node, now, &mut table)?;
                }
            }
        }
    }
}

fn check_after_evaluate(
    node: &mut ClusterNode,
    now: SimTime,
    table: &mut ClusterTable,
) -> Result<(), TestCaseError> {
    let before = node.role();
    let transition = node.evaluate(now, table);
    let after = node.role();
    // Transition reporting is exact.
    match transition {
        Some(tr) => {
            prop_assert_eq!(tr.from, before);
            prop_assert_eq!(tr.to, after);
            prop_assert_ne!(tr.from, tr.to);
            prop_assert_eq!(tr.node, node.id());
            prop_assert_eq!(tr.at, now);
        }
        None => prop_assert_eq!(before, after),
    }
    // Structural sanity of the new role.
    match after {
        Role::Member { ch } => {
            prop_assert_ne!(ch, node.id(), "self-affiliation");
            let entry = table.get(ch);
            prop_assert!(entry.is_some(), "member of an expired neighbor");
            prop_assert_eq!(
                entry.expect("checked").payload.role,
                RoleTag::Clusterhead,
                "member of a non-clusterhead"
            );
        }
        Role::Clusterhead | Role::Undecided => {}
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The metric pipeline never produces NaN/negative weights no
    /// matter which powers arrive (finite dBm inputs).
    #[test]
    fn metric_stays_finite_and_nonnegative(
        powers in prop::collection::vec(-120.0..0.0f64, 2..20),
    ) {
        let mut node = ClusterNode::new(
            NodeId::new(0),
            ClusterConfig::paper_default(AlgorithmKind::Mobic),
        );
        let mut table = ClusterTable::new(SimTime::from_secs(3));
        let mut now = SimTime::from_secs(1);
        for (k, &p) in powers.iter().enumerate() {
            table.record(
                now,
                Dbm::new(p),
                &Hello {
                    sender: NodeId::new(1),
                    seq: k as u64,
                    payload: ClusterAdvert::initial(),
                },
            );
            let hello = node.prepare_broadcast(now, &mut table);
            prop_assert!(node.metric().is_finite());
            prop_assert!(node.metric() >= 0.0);
            prop_assert!(hello.payload.primary.is_finite());
            now += SimTime::from_secs(2);
        }
    }

    /// Two nodes fed identical inputs stay in lockstep (the state
    /// machine is deterministic).
    #[test]
    fn state_machine_is_deterministic(
        events in prop::collection::vec(event_strategy(), 1..40),
    ) {
        let mk = || {
            (
                ClusterNode::new(NodeId::new(0), ClusterConfig::paper_default(AlgorithmKind::Mobic)),
                ClusterTable::new(SimTime::from_secs(3)),
            )
        };
        let (mut a, mut ta) = mk();
        let (mut b, mut tb) = mk();
        let mut now = SimTime::from_secs(1);
        let mut seqs = std::collections::HashMap::<u32, u64>::new();
        for ev in events {
            match ev {
                Event::Hear { id, primary_centi, role, ch } => {
                    let seq = seqs.entry(id).or_insert(0);
                    let hello = Hello {
                        sender: NodeId::new(id),
                        seq: *seq,
                        payload: ClusterAdvert {
                            primary: f64::from(primary_centi) / 100.0,
                            role: role_tag(role),
                            ch: ch.map(NodeId::new),
                        },
                    };
                    *seq += 1;
                    ta.record(now, Dbm::new(-60.0), &hello);
                    tb.record(now, Dbm::new(-60.0), &hello);
                }
                Event::Evaluate { ds } => {
                    now += SimTime::from_secs(u64::from(ds));
                    let ra = a.evaluate(now, &mut ta);
                    let rb = b.evaluate(now, &mut tb);
                    prop_assert_eq!(ra, rb);
                    prop_assert_eq!(a.role(), b.role());
                }
                Event::BigSilence => {
                    now += SimTime::from_secs(100);
                    let _ = a.evaluate(now, &mut ta);
                    let _ = b.evaluate(now, &mut tb);
                    prop_assert_eq!(a.role(), b.role());
                }
            }
        }
    }
}
