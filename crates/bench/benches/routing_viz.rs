//! Micro-benchmarks of the routing and visualization layers:
//! topology construction, BFS discovery, and SVG/ASCII rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobic_core::Role;
use mobic_geom::Vec2;
use mobic_net::NodeId;
use mobic_routing::{ClusterRouting, Discovery, Flooding};
use mobic_viz::{sparkline, ClusterScene, SvgStyle};

fn synthetic(n: usize) -> (Vec<Vec2>, Vec<Role>) {
    let positions: Vec<Vec2> = (0..n)
        .map(|i| {
            let t = i as f64;
            Vec2::new((t * 123.7) % 670.0, (t * 57.3) % 670.0)
        })
        .collect();
    // Roughly 1-in-8 clusterheads, the rest members of the nearest head.
    let heads: Vec<usize> = (0..n).step_by(8).collect();
    let roles: Vec<Role> = (0..n)
        .map(|i| {
            if heads.contains(&i) {
                Role::Clusterhead
            } else {
                let h = heads
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        positions[a]
                            .distance(positions[i])
                            .partial_cmp(&positions[b].distance(positions[i]))
                            .expect("finite")
                    })
                    .expect("at least one head");
                Role::Member {
                    ch: NodeId::new(h as u32),
                }
            }
        })
        .collect();
    (positions, roles)
}

fn bench_routing(c: &mut Criterion) {
    let (positions, roles) = synthetic(100);
    c.bench_function("routing/topology_build_100n", |b| {
        b.iter(|| {
            black_box(mobic_routing::ClusterTopology::new(
                &positions, &roles, 150.0,
            ))
        });
    });
    let topo = mobic_routing::ClusterTopology::new(&positions, &roles, 150.0);
    c.bench_function("routing/flood_discover_100n", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 7) % 100;
            black_box(Flooding.discover(&topo, k, (k + 53) % 100))
        });
    });
    c.bench_function("routing/cluster_discover_100n", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 7) % 100;
            black_box(ClusterRouting.discover(&topo, k, (k + 53) % 100))
        });
    });
}

fn bench_viz(c: &mut Criterion) {
    let (positions, roles) = synthetic(100);
    let scene = ClusterScene {
        field: mobic_geom::Rect::square(670.0),
        tx_range_m: 150.0,
        positions,
        roles,
    };
    let style = SvgStyle::default();
    c.bench_function("viz/svg_100n", |b| {
        b.iter(|| black_box(scene.to_svg(&style).len()));
    });
    c.bench_function("viz/ascii_100n", |b| {
        b.iter(|| black_box(scene.to_ascii(80, 24).len()));
    });
    let series: Vec<f64> = (0..450).map(|i| f64::from(i % 37)).collect();
    c.bench_function("viz/sparkline_450", |b| {
        b.iter(|| black_box(sparkline(&series).len()));
    });
}

criterion_group!(benches, bench_routing, bench_viz);
criterion_main!(benches);
