//! Micro-benchmarks of the clustering layer: neighbor-table updates,
//! metric computation, and one full clustering evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mobic_core::metric::{aggregate_with, table_mobility, MetricAggregation};
use mobic_core::{
    centralized::{lowest_weight_clustering, Adjacency},
    AlgorithmKind, ClusterAdvert, ClusterConfig, ClusterNode, ClusterTable, Weight,
};
use mobic_net::{Hello, NodeId};
use mobic_radio::Dbm;
use mobic_sim::SimTime;

/// Builds a table with `m` neighbors, each with a fresh successive
/// pair of receptions.
fn table_with(m: u32, now: SimTime) -> ClusterTable {
    let mut t = ClusterTable::new(SimTime::from_secs(3));
    for i in 0..m {
        let p0 = Dbm::new(-60.0 - f64::from(i % 7));
        let p1 = Dbm::new(-59.0 + f64::from(i % 5) * 0.3);
        let mk = |seq| Hello {
            sender: NodeId::new(i + 1),
            seq,
            payload: ClusterAdvert::initial(),
        };
        t.record(now - SimTime::from_secs(2), p0, &mk(0));
        t.record(now, p1, &mk(1));
    }
    t
}

fn bench_neighbor_table(c: &mut Criterion) {
    let now = SimTime::from_secs(10);
    c.bench_function("table/record_20_neighbors", |b| {
        b.iter(|| black_box(table_with(20, now).degree()));
    });
    c.bench_function("table/expire_20_neighbors", |b| {
        b.iter_batched(
            || table_with(20, now),
            |mut t| black_box(t.expire(now + SimTime::from_secs(10)).len()),
            BatchSize::SmallInput,
        );
    });
}

fn bench_metric(c: &mut Criterion) {
    let now = SimTime::from_secs(10);
    for m in [5u32, 20, 50] {
        let t = table_with(m, now);
        c.bench_function(&format!("metric/aggregate_{m}_neighbors"), |b| {
            b.iter(|| black_box(table_mobility(&t, now, SimTime::from_secs(3)).value));
        });
    }
}

fn bench_evaluate(c: &mut Criterion) {
    let now = SimTime::from_secs(10);
    for alg in [
        AlgorithmKind::Lcc,
        AlgorithmKind::Mobic,
        AlgorithmKind::HighestDegree,
    ] {
        c.bench_function(&format!("evaluate/20_neighbors_{}", alg.name()), |b| {
            b.iter_batched(
                || {
                    let node = ClusterNode::new(NodeId::new(0), ClusterConfig::paper_default(alg));
                    (node, table_with(20, now))
                },
                |(mut node, mut t)| {
                    black_box(node.evaluate(now, &mut t));
                    black_box(node.role())
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_aggregation(c: &mut Criterion) {
    let samples: Vec<f64> = (0..50).map(|i| f64::from(i % 13) - 6.0).collect();
    for (name, how) in [
        ("var0", MetricAggregation::Var0),
        ("median", MetricAggregation::MedianSq),
        ("max", MetricAggregation::MaxSq),
    ] {
        c.bench_function(&format!("metric/aggregate_{name}_50"), |b| {
            b.iter(|| black_box(aggregate_with(&samples, how)));
        });
    }
}

fn bench_centralized(c: &mut Criterion) {
    // A 200-node unit-disk graph.
    let positions: Vec<mobic_geom::Vec2> = (0..200)
        .map(|i| {
            let t = i as f64;
            mobic_geom::Vec2::new((t * 97.3) % 1000.0, (t * 53.9) % 1000.0)
        })
        .collect();
    let adj = Adjacency::unit_disk(&positions, 150.0);
    let weights: Vec<Weight> = (0..200)
        .map(|i| Weight::new((i as f64 * 7.7) % 13.0, NodeId::new(i)))
        .collect();
    c.bench_function("centralized/lowest_weight_200n", |b| {
        b.iter(|| black_box(lowest_weight_clustering(&weights, &adj).len()));
    });
}

criterion_group!(
    benches,
    bench_neighbor_table,
    bench_metric,
    bench_evaluate,
    bench_aggregation,
    bench_centralized
);
criterion_main!(benches);
