//! Micro-benchmarks of the discrete-event engine: event-queue
//! throughput and the end-to-end cost of a small scenario run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mobic_core::AlgorithmKind;
use mobic_scenario::{run_scenario, ScenarioConfig};
use mobic_sim::{EventQueue, SimTime, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter_batched(
            || {
                // Pseudo-random but fixed times.
                let mut x = 1u64;
                let times: Vec<SimTime> = (0..10_000)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        SimTime::from_micros(x >> 40)
                    })
                    .collect();
                times
            },
            |times| {
                let mut q = EventQueue::with_capacity(times.len());
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("simulation/self_rescheduling_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.schedule_at(SimTime::ZERO, 0u32);
            let mut count = 0u64;
            sim.run_until(SimTime::from_secs(10_000), |_, _, sched| {
                count += 1;
                if count < 10_000 {
                    sched.schedule_in(SimTime::SECOND, 0u32);
                }
            });
            black_box(count)
        });
    });
}

fn bench_full_scenario(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 25;
    cfg.sim_time_s = 60.0;
    cfg.tx_range_m = 200.0;
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    for alg in [AlgorithmKind::Lcc, AlgorithmKind::Mobic] {
        group.bench_function(format!("25n_60s_{}", alg.name()), |b| {
            let cfg = cfg.with_algorithm(alg);
            b.iter(|| black_box(run_scenario(&cfg, 1).expect("valid")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_full_scenario);
criterion_main!(benches);
