//! Micro-benchmarks of the physical substrates: mobility sampling,
//! propagation evaluation, spatial indexing and broadcast delivery.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobic_geom::{GridIndex, Rect, Vec2};
use mobic_mobility::{Mobility, RandomWaypoint, RandomWaypointParams};
use mobic_net::{loss::NoLoss, DeliveryEngine, NodeId};
use mobic_radio::{FreeSpace, Propagation, Radio, TwoRayGround};
use mobic_sim::{rng::SeedSplitter, SimTime};

fn bench_mobility(c: &mut Criterion) {
    let params = RandomWaypointParams {
        field: Rect::square(670.0),
        min_speed_mps: 0.0,
        max_speed_mps: 20.0,
        pause: SimTime::ZERO,
    };
    c.bench_function("mobility/rwp_sample_sequential", |b| {
        let mut node = RandomWaypoint::new(params, SeedSplitter::new(1).stream("m", 0));
        // Pre-extend so we measure pure sampling.
        let _ = node.position_at(SimTime::from_secs(900));
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 37) % 900_000_000;
            black_box(node.position_at(SimTime::from_micros(t)))
        });
    });
    c.bench_function("mobility/rwp_extend_900s", |b| {
        b.iter(|| {
            let mut node = RandomWaypoint::new(params, SeedSplitter::new(2).stream("m", 1));
            black_box(node.position_at(SimTime::from_secs(900)))
        });
    });
}

fn bench_link_analysis(c: &mut Criterion) {
    use mobic_mobility::analysis::link_intervals;
    let params = RandomWaypointParams {
        field: Rect::square(670.0),
        min_speed_mps: 0.0,
        max_speed_mps: 20.0,
        pause: SimTime::ZERO,
    };
    let horizon = SimTime::from_secs(900);
    let mut a = RandomWaypoint::new(params, SeedSplitter::new(5).stream("a", 0));
    let mut b = RandomWaypoint::new(params, SeedSplitter::new(5).stream("b", 0));
    let _ = a.position_at(horizon);
    let _ = b.position_at(horizon);
    let (ta, tb) = (a.trajectory().clone(), b.trajectory().clone());
    c.bench_function("analysis/link_intervals_900s_pair", |bch| {
        bch.iter(|| black_box(link_intervals(&ta, &tb, 250.0, horizon).len()));
    });
}

fn bench_manhattan(c: &mut Criterion) {
    use mobic_mobility::{Manhattan, ManhattanParams};
    let params = ManhattanParams {
        field: Rect::square(600.0),
        block_m: 100.0,
        min_speed_mps: 5.0,
        max_speed_mps: 15.0,
        p_turn: 0.5,
    };
    c.bench_function("mobility/manhattan_extend_900s", |b| {
        b.iter(|| {
            let mut m = Manhattan::new(params, SeedSplitter::new(3).stream("m", 1));
            black_box(m.position_at(SimTime::from_secs(900)))
        });
    });
}

fn bench_propagation(c: &mut Criterion) {
    let fs = FreeSpace::at_frequency(914.0e6);
    let tr = TwoRayGround::ns2_default();
    c.bench_function("radio/friis_path_loss", |b| {
        let mut d = 1.0f64;
        b.iter(|| {
            d = if d > 249.0 { 1.0 } else { d + 0.37 };
            black_box(fs.mean_path_loss(d))
        });
    });
    c.bench_function("radio/two_ray_path_loss", |b| {
        let mut d = 1.0f64;
        b.iter(|| {
            d = if d > 249.0 { 1.0 } else { d + 0.37 };
            black_box(tr.mean_path_loss(d))
        });
    });
    c.bench_function("radio/with_range_solver", |b| {
        b.iter(|| black_box(Radio::with_range(fs, 250.0).nominal_range_m()));
    });
}

fn positions(n: usize) -> Vec<Vec2> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Vec2::new((t * 137.17) % 670.0, (t * 71.31) % 670.0)
        })
        .collect()
}

fn bench_spatial(c: &mut Criterion) {
    let pos = positions(1000);
    let idx = GridIndex::build(Rect::square(670.0), 100.0, &pos);
    c.bench_function("grid/query_within_100m_n1000", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % pos.len();
            black_box(idx.query_within(pos[i], 100.0).len())
        });
    });
    c.bench_function("grid/build_n1000", |b| {
        b.iter(|| black_box(GridIndex::build(Rect::square(670.0), 100.0, &pos).len()));
    });
}

fn bench_delivery(c: &mut Criterion) {
    let pos = positions(50);
    let mut engine = DeliveryEngine::new(
        Radio::with_range(FreeSpace::at_frequency(914.0e6), 250.0),
        NoLoss,
    );
    c.bench_function("delivery/broadcast_50n", |b| {
        let mut tx = 0u32;
        b.iter(|| {
            tx = (tx + 1) % 50;
            black_box(engine.broadcast(NodeId::new(tx), &pos, SimTime::ZERO).len())
        });
    });
}

criterion_group!(
    benches,
    bench_mobility,
    bench_manhattan,
    bench_link_analysis,
    bench_propagation,
    bench_spatial,
    bench_delivery
);
criterion_main!(benches);
