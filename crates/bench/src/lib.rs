//! Experiment harness regenerating every table and figure of the MOBIC
//! paper, plus Criterion micro-benchmarks.
//!
//! Each figure/table has a dedicated binary in `src/bin/` (see
//! DESIGN.md §3 for the index). All binaries:
//!
//! * print the figure's rows/series as an ASCII table on stdout,
//! * write CSV + JSON under `results/`,
//! * honor two environment variables so CI can run cheap versions:
//!   - `MOBIC_SEEDS` — number of seeds per cell (default 5),
//!   - `MOBIC_FAST`  — if set, shrink the simulated time to 180 s
//!     (default: the paper's 900 s).
//!
//! Run the full reproduction with e.g.:
//!
//! ```text
//! cargo run --release -p mobic-bench --bin fig3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use mobic_core::AlgorithmKind;
use mobic_metrics::{report, AsciiTable};
use mobic_scenario::{run_batch_manifested, summarize_cs, ScenarioConfig, SweepOutcome};
use mobic_trace::{write_manifests, RunManifest};

/// Number of seeds per experiment cell (`MOBIC_SEEDS`, default 5).
#[must_use]
pub fn seeds() -> Vec<u64> {
    let n = std::env::var("MOBIC_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5)
        .max(1);
    (0..n).collect()
}

/// Applies the `MOBIC_FAST` switch to a base config.
#[must_use]
pub fn apply_fast(mut cfg: ScenarioConfig) -> ScenarioConfig {
    if std::env::var_os("MOBIC_FAST").is_some() {
        cfg.sim_time_s = 180.0;
    }
    cfg
}

/// Where experiment outputs are written (`results/` under the
/// workspace root, falling back to the current directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    // The binaries run from the workspace root under `cargo run`; if
    // not, a local results/ directory is still a sensible place.
    PathBuf::from("results")
}

/// One cell of a sweep: an algorithm at an x-value, over all seeds.
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// The x-axis label (e.g. "Tx (m)").
    pub x_label: String,
    /// The algorithms, in column order.
    pub algorithms: Vec<AlgorithmKind>,
    /// Rows: (x, one outcome per algorithm).
    pub rows: Vec<(f64, Vec<SweepOutcome>)>,
    /// One reproducibility manifest per underlying run, in job order
    /// (`xs × algorithms × seeds`); [`publish`](Self::publish) writes
    /// them next to the results JSON.
    pub manifests: Vec<RunManifest>,
}

impl SweepTable {
    /// Runs the full cross product `xs × algorithms × seeds`, where
    /// `configure` maps an x-value to a scenario (algorithm is set by
    /// the driver).
    ///
    /// # Panics
    ///
    /// Panics if any generated configuration is invalid — experiment
    /// definitions are static, so an invalid one is a programming
    /// error.
    #[must_use]
    pub fn run(
        x_label: &str,
        xs: &[f64],
        algorithms: &[AlgorithmKind],
        seeds: &[u64],
        configure: impl Fn(f64) -> ScenarioConfig,
    ) -> Self {
        // Flatten into one parallel batch for maximal core use.
        let mut jobs = Vec::new();
        for &x in xs {
            for &alg in algorithms {
                for &seed in seeds {
                    jobs.push((configure(x).with_algorithm(alg), seed));
                }
            }
        }
        let (results, manifests) =
            run_batch_manifested(&jobs).expect("experiment configs must be valid");
        let mut rows = Vec::new();
        let mut idx = 0;
        for &x in xs {
            let mut per_alg = Vec::new();
            for _ in algorithms {
                let chunk = &results[idx..idx + seeds.len()];
                idx += seeds.len();
                per_alg.push(summarize_cs(x, chunk));
            }
            rows.push((x, per_alg));
        }
        SweepTable {
            x_label: x_label.to_string(),
            algorithms: algorithms.to_vec(),
            rows,
            manifests,
        }
    }

    /// Renders the clusterhead-change (`CS`) view of the sweep.
    #[must_use]
    pub fn cs_table(&self) -> AsciiTable {
        let mut header = vec![self.x_label.clone()];
        for alg in &self.algorithms {
            header.push(format!("{} CS", alg.name()));
            header.push(format!("{} ±", alg.name()));
        }
        let mut t = AsciiTable::new(header);
        for (x, outs) in &self.rows {
            let mut row = vec![format!("{x:.0}")];
            for o in outs {
                row.push(format!("{:.1}", o.mean_cs));
                row.push(format!("{:.1}", o.stderr_cs));
            }
            t.row(row);
        }
        t
    }

    /// Renders the cluster-count view of the sweep (Figure 4's
    /// quantity).
    #[must_use]
    pub fn clusters_table(&self) -> AsciiTable {
        let mut header = vec![self.x_label.clone()];
        for alg in &self.algorithms {
            header.push(format!("{} clusters", alg.name()));
        }
        let mut t = AsciiTable::new(header);
        for (x, outs) in &self.rows {
            let mut row = vec![format!("{x:.0}")];
            for o in outs {
                row.push(format!("{:.2}", o.mean_clusters));
            }
            t.row(row);
        }
        t
    }

    /// All outcomes flattened (for JSON export).
    #[must_use]
    pub fn outcomes(&self) -> Vec<&SweepOutcome> {
        self.rows.iter().flat_map(|(_, v)| v.iter()).collect()
    }

    /// Prints both views and writes `results/<name>.{csv,json}`.
    pub fn publish(&self, name: &str, title: &str) {
        println!("== {title} ==");
        println!("{}", self.cs_table().render());
        println!("{}", self.clusters_table().render());
        let dir = results_dir();
        let csv = self.cs_table();
        if let Err(e) = csv.write_csv(dir.join(format!("{name}.csv"))) {
            eprintln!("warning: could not write CSV: {e}");
        }
        let flat: Vec<&SweepOutcome> = self.outcomes();
        if let Err(e) = report::write_json(&flat, dir.join(format!("{name}.json"))) {
            eprintln!("warning: could not write JSON: {e}");
        }
        if let Err(e) = write_manifests(dir.join(format!("{name}.json")), &self.manifests) {
            eprintln!("warning: could not write manifest: {e}");
        }
        println!(
            "(wrote results/{name}.csv, results/{name}.json and results/{name}.manifest.json)\n"
        );
    }

    /// The mean CS for (x, algorithm), if present.
    #[must_use]
    pub fn mean_cs(&self, x: f64, alg: AlgorithmKind) -> Option<f64> {
        let col = self.algorithms.iter().position(|&a| a == alg)?;
        self.rows
            .iter()
            .find(|(rx, _)| (rx - x).abs() < 1e-9)
            .map(|(_, outs)| outs[col].mean_cs)
    }
}

/// Per-row Welch significance of `b` beating (or losing to) `a`:
/// returns `(x, mean_a − mean_b, significant_at_5%)` rows.
#[must_use]
pub fn significance_vs(
    table: &SweepTable,
    a: AlgorithmKind,
    b: AlgorithmKind,
) -> Vec<(f64, f64, bool)> {
    let Some(ia) = table.algorithms.iter().position(|&k| k == a) else {
        return Vec::new();
    };
    let Some(ib) = table.algorithms.iter().position(|&k| k == b) else {
        return Vec::new();
    };
    table
        .rows
        .iter()
        .map(|(x, outs)| {
            let sa: mobic_metrics::OnlineStats = outs[ia].cs_samples.iter().copied().collect();
            let sb: mobic_metrics::OnlineStats = outs[ib].cs_samples.iter().copied().collect();
            let (_, _, sig) = mobic_metrics::welch_t(&sa, &sb);
            (*x, sa.mean() - sb.mean(), sig)
        })
        .collect()
}

/// Finds where algorithm `b` starts to consistently beat algorithm
/// `a` along the sweep (first x after which `b`'s mean CS stays
/// lower). Used by the §4.3 √f-scaling analysis.
#[must_use]
pub fn crossover_x(table: &SweepTable, a: AlgorithmKind, b: AlgorithmKind) -> Option<f64> {
    let ia = table.algorithms.iter().position(|&k| k == a)?;
    let ib = table.algorithms.iter().position(|&k| k == b)?;
    let mut candidate = None;
    for (x, outs) in &table.rows {
        if outs[ib].mean_cs < outs[ia].mean_cs {
            if candidate.is_none() {
                candidate = Some(*x);
            }
        } else {
            candidate = None;
        }
    }
    candidate
}

/// The x of the maximum mean CS for an algorithm (the "peak" the
/// paper's §4.3 analysis tracks).
#[must_use]
pub fn peak_x(table: &SweepTable, alg: AlgorithmKind) -> Option<f64> {
    let i = table.algorithms.iter().position(|&k| k == alg)?;
    table
        .rows
        .iter()
        .max_by(|a, b| {
            a.1[i]
                .mean_cs
                .partial_cmp(&b.1[i].mean_cs)
                .expect("CS is never NaN")
        })
        .map(|(x, _)| *x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_table() -> SweepTable {
        let algs = [AlgorithmKind::Lcc, AlgorithmKind::Mobic];
        SweepTable::run("Tx (m)", &[150.0, 250.0], &algs, &[0, 1], |tx| {
            let mut c = ScenarioConfig::paper_table1();
            c.n_nodes = 8;
            c.sim_time_s = 40.0;
            c.tx_range_m = tx;
            c
        })
    }

    #[test]
    fn sweep_covers_cross_product() {
        let t = tiny_table();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].1.len(), 2);
        assert_eq!(t.rows[0].1[0].runs, 2);
        assert_eq!(t.outcomes().len(), 4);
        assert!(t.mean_cs(150.0, AlgorithmKind::Lcc).is_some());
        assert!(t.mean_cs(999.0, AlgorithmKind::Lcc).is_none());
    }

    #[test]
    fn tables_render() {
        let t = tiny_table();
        let cs = t.cs_table().render();
        assert!(cs.contains("lcc CS"));
        assert!(cs.contains("mobic CS"));
        let cl = t.clusters_table().render();
        assert!(cl.contains("clusters"));
        assert_eq!(t.cs_table().len(), 2);
    }

    #[test]
    fn significance_rows_cover_sweep() {
        let t = tiny_table();
        let rows = significance_vs(&t, AlgorithmKind::Lcc, AlgorithmKind::Mobic);
        assert_eq!(rows.len(), 2);
        assert!(significance_vs(&t, AlgorithmKind::LowestId, AlgorithmKind::Mobic).is_empty());
    }

    #[test]
    fn peak_and_crossover_helpers() {
        let t = tiny_table();
        assert!(peak_x(&t, AlgorithmKind::Lcc).is_some());
        // Crossover may or may not exist on a tiny run; just ensure it
        // doesn't panic and respects membership.
        let _ = crossover_x(&t, AlgorithmKind::Lcc, AlgorithmKind::Mobic);
        assert_eq!(
            crossover_x(&t, AlgorithmKind::LowestId, AlgorithmKind::Mobic),
            None
        );
    }

    #[test]
    fn sweep_carries_one_manifest_per_run() {
        let t = tiny_table();
        // 2 xs × 2 algorithms × 2 seeds.
        assert_eq!(t.manifests.len(), 8);
        assert!(t
            .manifests
            .iter()
            .all(|m| m.schema == mobic_trace::MANIFEST_SCHEMA));
        // Job order is xs-major: the first seeds-len chunk shares a config.
        assert_eq!(t.manifests[0].config_hash, t.manifests[1].config_hash);
        assert_ne!(t.manifests[0].seed, t.manifests[1].seed);
    }

    #[test]
    fn seeds_env_default() {
        // Without the env var set we get at least one seed.
        assert!(!seeds().is_empty());
    }
}
