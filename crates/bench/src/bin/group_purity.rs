//! **Group-purity analysis (RPGM)** — when the population really moves
//! in groups (the RPGM model of \[9\], §2.2), do the clusters found by
//! the algorithms coincide with the underlying mobility groups?
//!
//! For each sampled instant we assign every decided node to its
//! cluster and compute the cluster's *purity*: the fraction of its
//! nodes belonging to the modal mobility group. A mobility-aware
//! algorithm should recover the groups better than an id-based one —
//! cross-group nodes have high relative mobility and should neither
//! head nor glue clusters together.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_net::NodeId;
use mobic_scenario::{run_scenario_observed, MobilityKind, ScenarioConfig};
use std::collections::BTreeMap;

const GROUPS: u32 = 5;

fn purity_for(alg: AlgorithmKind, history: bool, seed: u64, cfg: &ScenarioConfig) -> (f64, f64) {
    let mut cfg = cfg.with_algorithm(alg);
    if history {
        cfg.history_alpha = Some(0.7);
        cfg.metric_quantum = 1.0;
    }
    // The runner assigns node i to group i % GROUPS.
    let group_of = |i: usize| i % GROUPS as usize;
    let warmup = cfg.warmup_s;
    let mut purity = OnlineStats::new();
    let mut cluster_count = OnlineStats::new();
    run_scenario_observed(&cfg, seed, |view| {
        if view.now.as_secs_f64() < warmup {
            return;
        }
        // cluster id (clusterhead NodeId) → members' group histogram.
        let mut clusters: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, node) in view.nodes.iter().enumerate() {
            if let Some(c) = node.role().cluster_of(NodeId::new(i as u32)) {
                clusters.entry(c).or_default().push(group_of(i));
            }
        }
        cluster_count.push(clusters.len() as f64);
        for members in clusters.values() {
            if members.len() < 2 {
                continue; // singleton purity is trivially 1
            }
            let mut hist = [0usize; GROUPS as usize];
            for &g in members {
                hist[g] += 1;
            }
            let modal = *hist.iter().max().expect("nonempty") as f64;
            purity.push(modal / members.len() as f64);
        }
    })
    .expect("valid config");
    (purity.mean(), cluster_count.mean())
}

fn main() {
    let mut cfg = apply_fast(ScenarioConfig::paper_table1());
    cfg.mobility = MobilityKind::Rpgm {
        groups: GROUPS,
        member_radius_m: 50.0,
    };
    cfg.tx_range_m = 200.0;

    println!("== Group purity under RPGM ({GROUPS} groups of 10, Tx = 200 m) ==\n");
    let mut t = AsciiTable::new(["algorithm", "mean cluster purity", "mean clusters"]);
    for (label, alg, history) in [
        ("lcc", AlgorithmKind::Lcc, false),
        ("mobic (raw)", AlgorithmKind::Mobic, false),
        ("mobic (+history)", AlgorithmKind::Mobic, true),
    ] {
        let mut p = OnlineStats::new();
        let mut c = OnlineStats::new();
        for seed in seeds() {
            let (purity, clusters) = purity_for(alg, history, seed, &cfg);
            p.push(purity);
            c.push(clusters);
        }
        t.row([
            label.to_string(),
            format!("{:.3}", p.mean()),
            format!("{:.1}", c.mean()),
        ]);
    }
    println!("{}", t.render());
    println!("(purity = fraction of a cluster's nodes from its modal mobility group;");
    println!(" clusters of one node are excluded as trivially pure)");
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("group_purity.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/group_purity.csv)");
}
