//! **Design-choice ablation** — the metric tie quantum: rounding `M`
//! to a multiple of `q` dB² before it enters the election weight, so
//! near-ties become exact ties and fall back to the paper's
//! "same value of M → Lowest-ID" rule instead of being decided by
//! single-window measurement noise.
//!
//! `q = 0` is the paper's letter (raw doubles, ties essentially never
//! happen); moderate `q` recovers Lowest-ID's stability wherever the
//! metric carries no signal while preserving MOBIC's discrimination
//! where it does.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let seeds = seeds();
    println!("== Ablation: metric tie quantum (MOBIC, 670 x 670 m) ==\n");
    let mut t = AsciiTable::new(["quantum (dB²)", "CS @50m", "CS @150m", "CS @250m"]);
    // LCC reference row first.
    {
        let mut cells = Vec::new();
        for tx in [50.0, 150.0, 250.0] {
            let cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Lcc)
                .with_tx_range(tx);
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cells.push(format!("{:.1}", cs.mean()));
        }
        t.row([
            "lcc reference".to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    for q in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let mut cells = Vec::new();
        for tx in [50.0, 150.0, 250.0] {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Mobic)
                .with_tx_range(tx);
            cfg.metric_quantum = q;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cells.push(format!("{:.1}", cs.mean()));
        }
        let label = if q == 0.0 {
            "0 (paper)".to_string()
        } else {
            format!("{q:.1}")
        };
        t.row([label, cells[0].clone(), cells[1].clone(), cells[2].clone()]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_quantum.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_quantum.csv)");
}
