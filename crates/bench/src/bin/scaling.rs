//! **§4.3 analysis (X1)** — the √f scaling claim: growing the field
//! from 670² to 1000² (area factor `f ≈ 2.22`) should shift both the
//! churn peak and the MOBIC/LCC crossover to the right by about
//! `√f ≈ 1.49` in transmission range, keeping the cluster count at
//! those operating points roughly equal.

use mobic_bench::{apply_fast, crossover_x, peak_x, seeds, SweepTable};
use mobic_core::AlgorithmKind;
use mobic_metrics::AsciiTable;
use mobic_scenario::ScenarioConfig;

fn main() {
    let algs = [AlgorithmKind::Lcc, AlgorithmKind::Mobic];
    // A finer sweep resolves peaks better than the figure grids.
    let fine: Vec<f64> = (1..=25).map(|k| k as f64 * 10.0).collect();
    let dense = SweepTable::run("Tx (m)", &fine, &algs, &seeds(), |tx| {
        apply_fast(ScenarioConfig::paper_table1()).with_tx_range(tx)
    });
    let sparse = SweepTable::run("Tx (m)", &fine, &algs, &seeds(), |tx| {
        apply_fast(ScenarioConfig::paper_sparse()).with_tx_range(tx)
    });

    let f = (1000.0f64 * 1000.0) / (670.0 * 670.0);
    println!(
        "== X1: sqrt(f) scaling analysis (f = {f:.2}, sqrt(f) = {:.2}) ==\n",
        f.sqrt()
    );

    let mut t = AsciiTable::new(["quantity", "670x670", "1000x1000", "ratio", "paper ratio"]);
    let peak_d = peak_x(&dense, AlgorithmKind::Lcc).unwrap_or(f64::NAN);
    let peak_s = peak_x(&sparse, AlgorithmKind::Lcc).unwrap_or(f64::NAN);
    t.row([
        "LCC churn peak Tx (m)".to_string(),
        format!("{peak_d:.0}"),
        format!("{peak_s:.0}"),
        format!("{:.2}", peak_s / peak_d),
        "1.49 (= sqrt f)".to_string(),
    ]);
    let cross_d = crossover_x(&dense, AlgorithmKind::Lcc, AlgorithmKind::Mobic);
    let cross_s = crossover_x(&sparse, AlgorithmKind::Lcc, AlgorithmKind::Mobic);
    if let (Some(cd), Some(cs)) = (cross_d, cross_s) {
        t.row([
            "MOBIC crossover Tx (m)".to_string(),
            format!("{cd:.0}"),
            format!("{cs:.0}"),
            format!("{:.2}", cs / cd),
            "~1.4 (= sqrt f)".to_string(),
        ]);
    }
    println!("{}", t.render());

    // Cluster counts at those operating points ("~35 at the peak,
    // ~20 at the crossover" per the paper).
    let count_at = |table: &SweepTable, x: f64| -> Option<f64> {
        let col = table
            .algorithms
            .iter()
            .position(|&a| a == AlgorithmKind::Lcc)?;
        table
            .rows
            .iter()
            .find(|(rx, _)| (rx - x).abs() < 1e-9)
            .map(|(_, outs)| outs[col].mean_clusters)
    };
    if let (Some(a), Some(b)) = (count_at(&dense, peak_d), count_at(&sparse, peak_s)) {
        println!("clusters at the churn peak: {a:.1} vs {b:.1} (paper: ~35 in both)");
    }
    if let (Some(cd), Some(cs)) = (cross_d, cross_s) {
        if let (Some(a), Some(b)) = (count_at(&dense, cd), count_at(&sparse, cs)) {
            println!("clusters at the crossover:  {a:.1} vs {b:.1} (paper: ~20 in both)");
        }
    }

    if let Err(e) = dense
        .cs_table()
        .write_csv(mobic_bench::results_dir().join("scaling_670.csv"))
    {
        eprintln!("warning: {e}");
    }
    if let Err(e) = sparse
        .cs_table()
        .write_csv(mobic_bench::results_dir().join("scaling_1000.csv"))
    {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/scaling_670.csv and results/scaling_1000.csv)");
}
