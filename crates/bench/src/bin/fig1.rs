//! **Figure 1** — the Lowest-ID clustering schematic: 10 nodes, three
//! clusters headed by 1, 2 and 4, with gateways 8 and 9.
//!
//! We rebuild the figure's topology, run the centralized Lowest-ID
//! reference, and print every node's role; then we run the full
//! *distributed* engine (static nodes, real hello exchange) on the
//! same geometry and show it converges to the same clustering.

use mobic_core::centralized::{gateways, lowest_id_clustering, Adjacency};
use mobic_core::{AlgorithmKind, Role};
use mobic_geom::Vec2;
use mobic_metrics::AsciiTable;
use mobic_net::NodeId;

/// Node positions (meters) realizing the Figure-1 topology at a 60 m
/// range: three star clusters around 1, 2 and 4, with 8 bridging
/// clusters A/B and 9 bridging B/C.
fn positions() -> Vec<Vec2> {
    vec![
        Vec2::new(0.0, 0.0),     // id 1 — head of cluster A
        Vec2::new(110.0, 0.0),   // id 2 — head of cluster B
        Vec2::new(150.0, 35.0),  // id 3 — member of B
        Vec2::new(220.0, -30.0), // id 4 — head of cluster C
        Vec2::new(-50.0, 20.0),  // id 5 — member of A
        Vec2::new(250.0, 20.0),  // id 6 — member of C
        Vec2::new(270.0, -50.0), // id 7 — member of C
        Vec2::new(55.0, 10.0),   // id 8 — gateway A/B (hears 1 and 2)
        Vec2::new(165.0, -15.0), // id 9 — gateway B/C (hears 2 and 4)
        Vec2::new(215.0, -85.0), // id 10 — member of C
    ]
}

const RANGE_M: f64 = 62.0;

fn main() {
    let ids: Vec<NodeId> = (1..=10).map(NodeId::new).collect();
    let pos = positions();
    let adj = {
        let mut adj = Adjacency::new(10);
        for i in 0..10 {
            for j in (i + 1)..10 {
                if pos[i].distance(pos[j]) <= RANGE_M {
                    adj.connect(i, j);
                }
            }
        }
        adj
    };
    let roles = lowest_id_clustering(&ids, &adj);
    let gws = gateways(&roles, &adj);

    println!("== Figure 1: Lowest-ID clustering on the 10-node schematic ==");
    let mut t = AsciiTable::new(["node", "role", "cluster", "gateway"]);
    for (i, role) in roles.iter().enumerate() {
        let label = match role {
            Role::Clusterhead => "CLUSTERHEAD".to_string(),
            Role::Member { ch } => format!("member of {ch}"),
            Role::Undecided => "undecided".to_string(),
        };
        t.row([
            ids[i].to_string(),
            label,
            role.cluster_of(ids[i])
                .map_or("-".into(), |c| c.to_string()),
            if gws[i] { "yes".into() } else { String::new() },
        ]);
    }
    println!("{}", t.render());
    let heads: Vec<String> = roles
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_clusterhead())
        .map(|(i, _)| ids[i].to_string())
        .collect();
    println!("clusterheads: {} (paper: n1, n2, n4)", heads.join(", "));
    let gw_ids: Vec<String> = gws
        .iter()
        .enumerate()
        .filter(|&(_, &g)| g)
        .map(|(i, _)| ids[i].to_string())
        .collect();
    println!("gateways:     {} (paper: n8, n9)", gw_ids.join(", "));

    // Cross-check with the distributed engine on static nodes.
    let distributed = distributed_roles(&pos);
    let agree = distributed
        .iter()
        .zip(&roles)
        .all(|(a, b)| a.is_clusterhead() == b.is_clusterhead());
    println!(
        "\ndistributed engine (static run, {} algorithm) elects the same clusterheads: {agree}",
        AlgorithmKind::Lcc
    );
}

/// Runs the real distributed protocol over the static geometry and
/// returns the converged roles. Node ids are 0-based internally; we
/// map them to the figure's 1-based ids only for display, which keeps
/// the id *order* — all that Lowest-ID cares about — identical.
fn distributed_roles(pos: &[Vec2]) -> Vec<Role> {
    use mobic_core::{ClusterConfig, ClusterNode, ClusterTable};
    use mobic_net::{loss::NoLoss, DeliveryEngine};
    use mobic_radio::{FreeSpace, Radio};
    use mobic_sim::SimTime;

    let n = pos.len();
    let cfg = ClusterConfig::paper_default(AlgorithmKind::Lcc);
    let mut nodes: Vec<ClusterNode> = (0..n)
        .map(|i| ClusterNode::new(NodeId::new(i as u32), cfg))
        .collect();
    let mut tables: Vec<ClusterTable> = (0..n)
        .map(|_| ClusterTable::new(SimTime::from_secs(3)))
        .collect();
    let mut engine = DeliveryEngine::new(
        Radio::with_range(FreeSpace::at_frequency(914.0e6), RANGE_M),
        NoLoss,
    );
    // Ten synchronous-ish hello rounds are ample for convergence.
    for round in 0..10u64 {
        for i in 0..n {
            let now = SimTime::from_millis(round * 2000 + i as u64);
            let hello = nodes[i].prepare_broadcast(now, &mut tables[i]);
            for d in engine.broadcast(NodeId::new(i as u32), pos, now) {
                tables[d.receiver.index()].record(now, d.rx_power, &hello);
            }
            nodes[i].evaluate(now, &mut tables[i]);
        }
    }
    nodes.iter().map(ClusterNode::role).collect()
}
