//! Renders the experiment CSVs in `results/` into SVG figures —
//! visual counterparts of the paper's Figures 3, 4 and 5. Run the
//! `fig3`/`fig4`/`fig5` binaries first (or `scripts/reproduce_all.sh`).

use std::fs;
use std::path::Path;

use mobic_viz::{LineChart, Series};

/// Parses one of our own sweep CSVs: a header line followed by numeric
/// rows; column 0 is the x-axis.
fn parse_csv(path: &Path) -> Option<(Vec<String>, Vec<Vec<f64>>)> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header: Vec<String> = lines.next()?.split(',').map(str::to_string).collect();
    let mut rows = Vec::new();
    for line in lines {
        let row: Option<Vec<f64>> = line.split(',').map(|c| c.trim().parse().ok()).collect();
        rows.push(row?);
    }
    Some((header, rows))
}

/// Builds a chart from selected CSV columns (`(column index, label)`).
fn chart_from(
    title: &str,
    x_label: &str,
    y_label: &str,
    header: &[String],
    rows: &[Vec<f64>],
    columns: &[(usize, &str)],
) -> LineChart {
    let mut chart = LineChart::new(title, x_label, y_label);
    for &(col, label) in columns {
        if col >= header.len() {
            continue;
        }
        chart = chart.with_series(Series {
            name: label.to_string(),
            points: rows.iter().map(|r| (r[0], r[col])).collect(),
        });
    }
    chart
}

fn render(csv: &str, svg: &str, title: &str, y_label: &str, columns: &[(usize, &str)]) {
    let path = Path::new("results").join(csv);
    match parse_csv(&path) {
        Some((header, rows)) if !rows.is_empty() => {
            let chart = chart_from(title, "Tx (m)", y_label, &header, &rows, columns);
            let out = Path::new("results").join(svg);
            match mobic_trace::write_atomic(&out, chart.to_svg(640.0, 420.0)) {
                Ok(()) => println!("wrote {}", out.display()),
                Err(e) => eprintln!("cannot write {}: {e}", out.display()),
            }
        }
        _ => eprintln!("skipping {csv}: run the corresponding experiment binary first"),
    }
}

fn main() {
    // fig3/fig5 CSVs: Tx, lcc CS, lcc ±, mobic CS, mobic ± → cols 1 & 3.
    render(
        "fig3.csv",
        "fig3.svg",
        "Figure 3: clusterhead changes vs Tx (670x670 m)",
        "clusterhead changes",
        &[(1, "lowest-id (lcc)"), (3, "mobic")],
    );
    render(
        "fig5.csv",
        "fig5.svg",
        "Figure 5: clusterhead changes vs Tx (1000x1000 m)",
        "clusterhead changes",
        &[(1, "lowest-id (lcc)"), (3, "mobic")],
    );
    // fig4 CSV: Tx, lcc clusters, mobic clusters.
    render(
        "fig4.csv",
        "fig4.svg",
        "Figure 4: number of clusters vs Tx (670x670 m)",
        "clusters",
        &[(1, "lowest-id (lcc)"), (2, "mobic")],
    );
}
