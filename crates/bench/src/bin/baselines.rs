//! **X2** — the four-way baseline comparison: plain Lowest-ID, LCC,
//! Highest-Degree (max-connectivity) and MOBIC on the Figure-3
//! scenario.
//!
//! Expected ordering (from \[3\]/\[5\] and the paper): Highest-Degree
//! is the least stable, plain Lowest-ID is worse than its LCC variant,
//! and MOBIC is the most stable at moderate/large ranges.

use mobic_bench::{apply_fast, seeds, SweepTable};
use mobic_core::AlgorithmKind;
use mobic_scenario::ScenarioConfig;

fn main() {
    let algs = AlgorithmKind::ALL;
    let table = SweepTable::run(
        "Tx (m)",
        &[50.0, 100.0, 150.0, 200.0, 250.0],
        &algs,
        &seeds(),
        |tx| apply_fast(ScenarioConfig::paper_table1()).with_tx_range(tx),
    );
    table.publish("baselines", "X2: all four algorithms, 670 x 670 m");

    // Report the expected stability ordering at Tx = 250 m.
    let at = |alg| table.mean_cs(250.0, alg).unwrap_or(f64::NAN);
    println!(
        "CS at Tx=250 m:  highest-degree={:.0}  lowest-id={:.0}  lcc={:.0}  mobic={:.0}",
        at(AlgorithmKind::HighestDegree),
        at(AlgorithmKind::LowestId),
        at(AlgorithmKind::Lcc),
        at(AlgorithmKind::Mobic),
    );
    println!(
        "expected ordering holds (hd > lowest-id > lcc > mobic): {}",
        at(AlgorithmKind::HighestDegree) > at(AlgorithmKind::LowestId)
            && at(AlgorithmKind::LowestId) > at(AlgorithmKind::Lcc)
            && at(AlgorithmKind::Lcc) > at(AlgorithmKind::Mobic)
    );
}
