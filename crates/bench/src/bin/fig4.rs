//! **Figure 4** — number of clusters vs. transmission range on the
//! 670 m × 670 m field: MOBIC vs. Lowest-ID (LCC).
//!
//! Expected shape (paper §4.2): the cluster count strictly decreases
//! with range (≈35 clusters at the Tx≈50 churn peak, flattening beyond
//! 125 m), with **little difference between the two algorithms** —
//! both are local weight-based clusterings over the same motion.

use mobic_bench::{apply_fast, seeds, SweepTable};
use mobic_core::AlgorithmKind;
use mobic_scenario::{params, ScenarioConfig};

fn main() {
    let algs = [AlgorithmKind::Lcc, AlgorithmKind::Mobic];
    let table = SweepTable::run(
        "Tx (m)",
        &params::tx_sweep_values(),
        &algs,
        &seeds(),
        |tx| apply_fast(ScenarioConfig::paper_table1()).with_tx_range(tx),
    );
    println!("== Figure 4: number of clusters vs Tx (670 x 670 m) ==");
    println!("{}", table.clusters_table().render());
    let dir = mobic_bench::results_dir();
    if let Err(e) = table.clusters_table().write_csv(dir.join("fig4.csv")) {
        eprintln!("warning: could not write CSV: {e}");
    }
    let flat = table.outcomes();
    if let Err(e) = mobic_metrics::report::write_json(&flat, dir.join("fig4.json")) {
        eprintln!("warning: could not write JSON: {e}");
    }
    if let Err(e) = mobic_trace::write_manifests(dir.join("fig4.json"), &table.manifests) {
        eprintln!("warning: could not write manifest: {e}");
    }
    println!("(wrote results/fig4.csv, results/fig4.json and results/fig4.manifest.json)");

    // The monotone-decrease check the paper's discussion makes.
    let i_lcc = 0;
    let decreasing = table
        .rows
        .windows(2)
        .all(|w| w[1].1[i_lcc].mean_clusters <= w[0].1[i_lcc].mean_clusters + 0.5);
    println!("cluster count decreases with Tx: {decreasing}");
}
