//! **Figure 3** — clusterhead changes vs. transmission range on the
//! 670 m × 670 m field (50 nodes, MaxSpeed 20 m/s, PT 0 s, 900 s):
//! MOBIC vs. Lowest-ID (LCC).
//!
//! Expected shape (paper §4.2): both curves rise to a peak near
//! `Tx ≈ 50 m` then fall; MOBIC underperforms at small ranges, crosses
//! over near `Tx ≈ 100 m`, and wins by a widening margin up to ~33 %
//! at `Tx = 250 m`.

use mobic_bench::{apply_fast, crossover_x, peak_x, seeds, significance_vs, SweepTable};
use mobic_core::AlgorithmKind;
use mobic_scenario::{params, ScenarioConfig};

fn main() {
    let algs = [AlgorithmKind::Lcc, AlgorithmKind::Mobic];
    let table = SweepTable::run(
        "Tx (m)",
        &params::tx_sweep_values(),
        &algs,
        &seeds(),
        |tx| apply_fast(ScenarioConfig::paper_table1()).with_tx_range(tx),
    );
    table.publish("fig3", "Figure 3: clusterhead changes vs Tx (670 x 670 m)");

    if let (Some(lcc), Some(mobic)) = (
        table.mean_cs(250.0, AlgorithmKind::Lcc),
        table.mean_cs(250.0, AlgorithmKind::Mobic),
    ) {
        println!(
            "gain at Tx=250 m: {:.1}% fewer clusterhead changes (paper: ~33%)",
            100.0 * (lcc - mobic) / lcc
        );
    }
    if let Some(x) = crossover_x(&table, AlgorithmKind::Lcc, AlgorithmKind::Mobic) {
        println!("MOBIC starts to win at Tx ≈ {x:.0} m (paper: ~100 m)");
    }
    if let Some(x) = peak_x(&table, AlgorithmKind::Lcc) {
        println!("LCC churn peaks at Tx ≈ {x:.0} m (paper: ~50 m)");
    }
    println!("\nWelch 5% significance of the LCC−MOBIC difference per Tx:");
    for (x, delta, sig) in significance_vs(&table, AlgorithmKind::Lcc, AlgorithmKind::Mobic) {
        println!(
            "  Tx={x:>3.0} m: Δ = {delta:+8.1} {}",
            if sig { "(significant)" } else { "(n.s.)" }
        );
    }
}
