//! **Figure 5** — clusterhead changes vs. transmission range on the
//! sparser 1000 m × 1000 m field (§4.3), same node count and motion.
//!
//! Expected shape: more clusterhead changes than the 670² case at
//! comparable ranges, the churn **peak shifted right** (≈75 m instead
//! of ≈50 m), and the MOBIC/LCC **crossover shifted right** (≈140 m
//! instead of ≈100 m) — both by roughly `√f` with
//! `f = 1000²/670² ≈ 2.22`.

use mobic_bench::{apply_fast, crossover_x, peak_x, seeds, SweepTable};
use mobic_core::AlgorithmKind;
use mobic_scenario::{params, ScenarioConfig};

fn main() {
    let algs = [AlgorithmKind::Lcc, AlgorithmKind::Mobic];
    let table = SweepTable::run(
        "Tx (m)",
        &params::tx_sweep_values(),
        &algs,
        &seeds(),
        |tx| apply_fast(ScenarioConfig::paper_sparse()).with_tx_range(tx),
    );
    table.publish(
        "fig5",
        "Figure 5: clusterhead changes vs Tx (1000 x 1000 m)",
    );

    if let Some(x) = peak_x(&table, AlgorithmKind::Lcc) {
        println!("LCC churn peaks at Tx ≈ {x:.0} m (paper: ~75 m)");
    }
    if let Some(x) = crossover_x(&table, AlgorithmKind::Lcc, AlgorithmKind::Mobic) {
        println!("MOBIC starts to win at Tx ≈ {x:.0} m (paper: ~140 m)");
    }
}
