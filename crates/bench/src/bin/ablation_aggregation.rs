//! **Metric-aggregation ablation** — how should the pairwise samples
//! fold into `M`? The paper's Eq. 2 uses the variance about zero
//! (mean of squares), which a single close passing neighbor can
//! dominate on the dB scale. We compare:
//!
//! * `var0` — the paper's aggregate;
//! * `median` — median of squares (robust to single-pair outliers);
//! * `max` — maximum square (most pessimistic).
//!
//! Headline finding (EXPERIMENTS.md): the robust median aggregate
//! recovers the paper's full ~33 % gain at `Tx = 250 m` that the raw
//! mean-of-squares loses to measurement noise in our reproduction.

use mobic_bench::{apply_fast, seeds};
use mobic_core::metric::MetricAggregation;
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let seeds = seeds();
    println!("== Ablation: metric aggregation (670 x 670 m) ==\n");
    let mut t = AsciiTable::new([
        "aggregate",
        "CS @50m",
        "CS @150m",
        "CS @250m",
        "gain @250m %",
    ]);
    let mut lcc250 = 0.0;
    // LCC reference.
    {
        let mut cells = Vec::new();
        for tx in [50.0, 150.0, 250.0] {
            let cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Lcc)
                .with_tx_range(tx);
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            if tx == 250.0 {
                lcc250 = cs.mean();
            }
            cells.push(format!("{:.1}", cs.mean()));
        }
        t.row([
            "lcc reference".to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            String::new(),
        ]);
    }
    for (label, how) in [
        ("var0 (paper)", MetricAggregation::Var0),
        ("median", MetricAggregation::MedianSq),
        ("max", MetricAggregation::MaxSq),
    ] {
        let mut cells = Vec::new();
        let mut cs250 = 0.0;
        for tx in [50.0, 150.0, 250.0] {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Mobic)
                .with_tx_range(tx);
            cfg.metric_aggregation = how;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            if tx == 250.0 {
                cs250 = cs.mean();
            }
            cells.push(format!("{:.1}", cs.mean()));
        }
        t.row([
            label.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            format!("{:+.1}", 100.0 * (lcc250 - cs250) / lcc250.max(1.0)),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_aggregation.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_aggregation.csv)");
}
