//! **Fairness analysis** — the flip side of stability. A clusterhead
//! spends energy coordinating its cluster, so long-serving heads drain
//! first. Lowest-ID concentrates the burden on low-id nodes *forever*;
//! MOBIC concentrates it on *calm* nodes for as long as they stay calm.
//! How unequal is the clusterhead burden under each algorithm, and
//! does stability buy inequality?
//!
//! We report the Gini coefficient of per-node clusterhead time shares,
//! how many distinct nodes ever serve, and the CS metric side by side.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::ScenarioConfig;

fn main() {
    let seeds = seeds();
    println!("== Fairness: clusterhead burden distribution (Tx = 250 m, 900 s) ==\n");
    let mut t = AsciiTable::new([
        "algorithm",
        "CS",
        "burden gini",
        "distinct heads",
        "max share %",
    ]);
    for alg in AlgorithmKind::ALL {
        let mut cs = OnlineStats::new();
        let mut gini = OnlineStats::new();
        let mut distinct = OnlineStats::new();
        let mut max_share = OnlineStats::new();
        for &seed in &seeds {
            let cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(alg)
                .with_tx_range(250.0);
            let r = mobic_scenario::run_scenario(&cfg, seed).expect("valid config");
            cs.push(r.clusterhead_changes as f64);
            gini.push(r.ch_time_gini);
            distinct.push(r.distinct_clusterheads as f64);
            // Reconstruct the largest individual share from the trace.
            let warmup = mobic_sim::SimTime::from_secs_f64(cfg.warmup_s);
            let end = mobic_sim::SimTime::from_secs_f64(cfg.sim_time_s);
            let mut log = mobic_metrics::TransitionLog::new();
            log.extend(r.role_transitions.iter().copied());
            let shares = log.clusterhead_time_shares(cfg.n_nodes as usize, warmup, end);
            max_share.push(shares.iter().copied().fold(0.0, f64::max));
        }
        t.row([
            alg.name().to_string(),
            format!("{:.1}", cs.mean()),
            format!("{:.3}", gini.mean()),
            format!("{:.1}", distinct.mean()),
            format!("{:.1}", 100.0 * max_share.mean()),
        ]);
    }
    println!("{}", t.render());
    println!("(gini of per-node time spent as clusterhead after warmup; max share =");
    println!(" largest single node's fraction of the measurement window spent as head)");
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("fairness.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/fairness.csv)");
}
