//! **X6** — packet-loss sensitivity of the mobility metric. The
//! aggregate `M` needs **two successive** hellos per neighbor; every
//! lost hello knocks that neighbor out of the next metric computation,
//! so loss directly starves MOBIC's weight while leaving Lowest-ID's
//! (static ids) untouched.
//!
//! We sweep independent loss p ∈ {0, 0.05, 0.1, 0.2} and a bursty
//! Gilbert–Elliott channel at Tx = 250 m.
//!
//! Expected: MOBIC's advantage erodes as loss grows (and erodes faster
//! under bursty loss), while both algorithms' absolute churn rises
//! because neighbor tables flap.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, LossKind, ScenarioConfig};

fn main() {
    let seeds = seeds();
    let channels: Vec<(String, LossKind)> = vec![
        ("p=0 (paper)".into(), LossKind::None),
        ("p=0.05".into(), LossKind::Bernoulli { p: 0.05 }),
        ("p=0.10".into(), LossKind::Bernoulli { p: 0.10 }),
        ("p=0.20".into(), LossKind::Bernoulli { p: 0.20 }),
        ("bursty (GE)".into(), LossKind::BurstyPreset),
    ];
    println!("== X6: packet-loss sensitivity (Tx = 250 m) ==\n");
    let mut t = AsciiTable::new(["channel", "lcc CS", "mobic CS", "mobic gain %"]);
    for (label, loss) in channels {
        let mut cs = [0.0f64; 2];
        for (k, alg) in [AlgorithmKind::Lcc, AlgorithmKind::Mobic]
            .into_iter()
            .enumerate()
        {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(alg)
                .with_tx_range(250.0);
            cfg.loss = loss;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let stats: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cs[k] = stats.mean();
        }
        t.row([
            label,
            format!("{:.1}", cs[0]),
            format!("{:.1}", cs[1]),
            format!("{:+.1}", 100.0 * (cs[0] - cs[1]) / cs[0].max(1.0)),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_loss.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_loss.csv)");
}
