//! **Robustness ablation** — MAC collisions. The paper sidesteps the
//! MAC ("we only consider transmissions that are successfully received
//! by the MAC layer"); here we switch on the vulnerable-window
//! collision approximation and sweep the hello airtime to see how much
//! MAC realism the conclusions tolerate.
//!
//! A lost hello breaks the "two successive transmissions" requirement
//! for that neighbor, starving the metric exactly like channel loss
//! (X6) but with arrival-time correlation instead of independence.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let seeds = seeds();
    println!("== Ablation: MAC collision window (Tx = 250 m) ==\n");
    let mut t = AsciiTable::new([
        "packet time",
        "collided %",
        "lcc CS",
        "mobic CS",
        "mobic gain %",
    ]);
    for packet_ms in [0.0, 0.25, 1.0, 5.0, 20.0] {
        let mut cs = [0.0f64; 2];
        let mut collided_frac = 0.0;
        for (k, alg) in [AlgorithmKind::Lcc, AlgorithmKind::Mobic]
            .into_iter()
            .enumerate()
        {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(alg)
                .with_tx_range(250.0);
            cfg.packet_time_s = packet_ms / 1000.0;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let stats: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cs[k] = stats.mean();
            if k == 0 {
                let col: u64 = runs.iter().map(|r| r.mac_collisions).sum();
                let del: u64 = runs.iter().map(|r| r.deliveries + r.mac_collisions).sum();
                collided_frac = 100.0 * col as f64 / del.max(1) as f64;
            }
        }
        let label = if packet_ms == 0.0 {
            "off (paper)".to_string()
        } else {
            format!("{packet_ms} ms")
        };
        t.row([
            label,
            format!("{collided_frac:.1}"),
            format!("{:.1}", cs[0]),
            format!("{:.1}", cs[1]),
            format!("{:+.1}", 100.0 * (cs[0] - cs[1]) / cs[0].max(1.0)),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_collisions.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_collisions.csv)");
}
