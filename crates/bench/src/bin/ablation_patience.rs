//! **Design-choice ablation** — the undecided-patience window (see
//! DESIGN.md "Self-election rule"): how long an orphaned node rides
//! along undecided before the completeness fallback lets it claim a
//! cluster. Applied to both LCC and MOBIC so the comparison stays
//! fair.
//!
//! Expected: patience 0 (immediate self-election) erases most of
//! MOBIC's advantage — fast escapees crown themselves regardless of
//! their mobility; moderate patience (the 4 s default) restores it;
//! very long patience trades churn for temporary coverage gaps.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let seeds = seeds();
    println!("== Ablation: undecided patience (Tx = 250 m, 670 x 670 m) ==\n");
    let mut t = AsciiTable::new(["patience (s)", "lcc CS", "mobic CS", "mobic gain %"]);
    for patience in [0.0, 2.0, 4.0, 8.0, 16.0] {
        let mut cs = [0.0f64; 2];
        for (k, alg) in [AlgorithmKind::Lcc, AlgorithmKind::Mobic]
            .into_iter()
            .enumerate()
        {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(alg)
                .with_tx_range(250.0);
            cfg.undecided_patience_s = patience;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let stats: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cs[k] = stats.mean();
        }
        let label = if patience == 4.0 {
            format!("{patience:.0} (default)")
        } else {
            format!("{patience:.0}")
        };
        t.row([
            label,
            format!("{:.1}", cs[0]),
            format!("{:.1}", cs[1]),
            format!("{:+.1}", 100.0 * (cs[0] - cs[1]) / cs[0].max(1.0)),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_patience.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_patience.csv)");
}
