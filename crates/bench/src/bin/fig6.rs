//! **Figure 6(a)/(b)** — effect of the degree of mobility at
//! `Tx = 250 m`: clusterhead changes vs. MaxSpeed ∈ {1, 20, 30} m/s,
//! with pause time 0 s (panel a, "always mobile") and 30 s (panel b).
//!
//! Expected shape (paper §4.4): MOBIC beats Lowest-ID by a clear
//! margin in the always-mobile case (50–100 changes at the paper's
//! scale), keeps an appreciable gain even at 30 m/s, and the gains are
//! slightly reduced — but retained — with 30 s pauses.

use mobic_bench::{apply_fast, seeds, SweepTable};
use mobic_core::AlgorithmKind;
use mobic_scenario::ScenarioConfig;

fn main() {
    let algs = [AlgorithmKind::Lcc, AlgorithmKind::Mobic];
    let speeds = [1.0, 20.0, 30.0];
    for (panel, pause) in [("a", 0.0), ("b", 30.0)] {
        let table = SweepTable::run("MaxSpeed (m/s)", &speeds, &algs, &seeds(), |speed| {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1());
            cfg.max_speed_mps = speed;
            cfg.pause_s = pause;
            cfg.tx_range_m = 250.0;
            cfg
        });
        table.publish(
            &format!("fig6{panel}"),
            &format!("Figure 6({panel}): CS vs MaxSpeed at Tx=250 m, PT={pause} s"),
        );
        for &speed in &speeds {
            if let (Some(lcc), Some(mobic)) = (
                table.mean_cs(speed, AlgorithmKind::Lcc),
                table.mean_cs(speed, AlgorithmKind::Mobic),
            ) {
                println!(
                    "  MaxSpeed={speed:>4} m/s PT={pause:>2} s: MOBIC saves {:.1} changes ({:+.1}%)",
                    lcc - mobic,
                    100.0 * (lcc - mobic) / lcc.max(1.0)
                );
            }
        }
        println!();
    }
}
