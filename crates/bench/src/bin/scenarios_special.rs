//! **X4 (§5 extension)** — the specialized scenarios the paper
//! predicts MOBIC will shine in: "cars traveling on a highway or
//! attendees in a conference hall", i.e. settings where "the relative
//! mobility between nodes does not differ significantly".
//!
//! Scenarios:
//!
//! * one-way highway (the paper's convoy reading): 1000 m × 100 m
//!   strip, 4 lanes all eastbound at 25 m/s;
//! * two-way highway: same but alternating lane directions — oncoming
//!   passes inject large relative-mobility samples into everyone's
//!   aggregate, a stress case the paper did not anticipate;
//! * conference hall: 120 m × 120 m, 8 booths, walking pace, long
//!   lingering;
//! * RPGM group mobility (the \[9\] model from §2.2): 5 groups of 10.
//!
//! Because these low-relative-mobility settings leave `M` dominated by
//! single-window measurement noise, we report raw MOBIC **and** the
//! paper's §5 history extension (EWMA α = 0.7 + 1 dB² tie quantum),
//! which is where the predicted gains materialize.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, MobilityKind, ScenarioConfig};

fn scenario(kind: MobilityKind) -> ScenarioConfig {
    let mut cfg = apply_fast(ScenarioConfig::paper_table1());
    match kind {
        MobilityKind::Highway { .. } => {
            cfg.field_w_m = 1000.0;
            cfg.field_h_m = 100.0;
            cfg.max_speed_mps = 25.0;
            cfg.tx_range_m = 150.0;
        }
        MobilityKind::ConferenceHall { .. } => {
            cfg.field_w_m = 120.0;
            cfg.field_h_m = 120.0;
            cfg.tx_range_m = 40.0;
        }
        _ => {
            cfg.tx_range_m = 200.0;
        }
    }
    cfg.mobility = kind;
    cfg
}

fn mean_cs(cfg: ScenarioConfig, seeds: &[u64]) -> f64 {
    let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
    let runs = run_batch(&jobs).expect("valid config");
    let stats: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
    stats.mean()
}

fn main() {
    let seeds = seeds();
    let cases: Vec<(&str, MobilityKind)> = vec![
        ("random-waypoint (ref)", MobilityKind::RandomWaypoint),
        (
            "highway one-way (par. §5)",
            MobilityKind::Highway {
                lanes: 4,
                bidirectional: false,
            },
        ),
        (
            "highway two-way (stress)",
            MobilityKind::Highway {
                lanes: 4,
                bidirectional: true,
            },
        ),
        (
            "conference 8 booths",
            MobilityKind::ConferenceHall { booths: 8 },
        ),
        (
            "rpgm 5 groups",
            MobilityKind::Rpgm {
                groups: 5,
                member_radius_m: 50.0,
            },
        ),
    ];
    println!("== X4: specialized mobility scenarios ==\n");
    let mut t = AsciiTable::new([
        "scenario",
        "Tx (m)",
        "lcc CS",
        "mobic CS",
        "mobic+h CS",
        "raw gain %",
        "+h gain %",
    ]);
    for (label, kind) in cases {
        let base = scenario(kind);
        let lcc = mean_cs(base.with_algorithm(AlgorithmKind::Lcc), &seeds);
        let raw = mean_cs(base.with_algorithm(AlgorithmKind::Mobic), &seeds);
        let smoothed = {
            let mut cfg = base.with_algorithm(AlgorithmKind::Mobic);
            cfg.history_alpha = Some(0.7);
            cfg.metric_quantum = 1.0;
            mean_cs(cfg, &seeds)
        };
        t.row([
            label.to_string(),
            format!("{:.0}", base.tx_range_m),
            format!("{lcc:.1}"),
            format!("{raw:.1}"),
            format!("{smoothed:.1}"),
            format!("{:+.1}", 100.0 * (lcc - raw) / lcc.max(1.0)),
            format!("{:+.1}", 100.0 * (lcc - smoothed) / lcc.max(1.0)),
        ]);
    }
    println!("{}", t.render());
    println!("('+h' = §5 history extension: EWMA alpha 0.7 and 1 dB² tie quantum)");
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("scenarios_special.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/scenarios_special.csv)");
}
