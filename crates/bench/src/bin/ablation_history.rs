//! **X3 (§5 extension)** — history smoothing of the aggregate metric:
//! the paper conjectures that "keeping some history information about
//! the mobility values may yield more stable metrics and ... more
//! stable clusters". We EWMA-smooth `M` with weight α and sweep α.
//!
//! Expected: CS decreases with moderate α (the metric stops reacting
//! to single-window measurement noise) with diminishing or reversing
//! returns as α → 1 (the metric goes stale).

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let alphas: [Option<f64>; 5] = [None, Some(0.3), Some(0.5), Some(0.7), Some(0.9)];
    let seeds = seeds();
    println!("== X3: EWMA history smoothing of M (MOBIC, Tx = 150 / 250 m) ==\n");
    let mut t = AsciiTable::new(["alpha", "CS @150m", "CS @250m", "clusters @250m"]);
    for alpha in alphas {
        let mut cells = Vec::new();
        let mut clusters250 = 0.0;
        for tx in [150.0, 250.0] {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Mobic)
                .with_tx_range(tx);
            cfg.history_alpha = alpha;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cells.push(format!("{:.1}", cs.mean()));
            if tx == 250.0 {
                clusters250 = runs.iter().map(|r| r.avg_clusters).sum::<f64>() / runs.len() as f64;
            }
        }
        t.row([
            alpha.map_or("none (paper)".to_string(), |a| format!("{a:.1}")),
            cells[0].clone(),
            cells[1].clone(),
            format!("{clusters250:.1}"),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_history.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_history.csv)");
}
