//! **X7** — Cluster Contention Interval ablation: how much of MOBIC's
//! stability comes from deferring clusterhead-vs-clusterhead
//! reclustering? We sweep CCI ∈ {0, 2, 4, 8} s (the paper fixes 4 s).
//!
//! Expected: CCI = 0 (immediate resolution, as LCC does) is visibly
//! worse; returns diminish beyond the paper's 4 s.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let seeds = seeds();
    println!("== X7: CCI ablation (MOBIC, 670 x 670 m) ==\n");
    let mut t = AsciiTable::new(["CCI (s)", "CS @150m", "CS @250m", "clusters @250m"]);
    for cci in [0.0, 2.0, 4.0, 8.0] {
        let mut cells = Vec::new();
        let mut clusters = 0.0;
        for tx in [150.0, 250.0] {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Mobic)
                .with_tx_range(tx);
            cfg.cci_s = cci;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            cells.push(format!("{:.1}", cs.mean()));
            if tx == 250.0 {
                clusters = runs.iter().map(|r| r.avg_clusters).sum::<f64>() / runs.len() as f64;
            }
        }
        let label = if cci == 4.0 {
            format!("{cci:.0} (paper)")
        } else {
            format!("{cci:.0}")
        };
        t.row([
            label,
            cells[0].clone(),
            cells[1].clone(),
            format!("{clusters:.1}"),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("ablation_cci.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/ablation_cci.csv)");
}
