//! **§5 extension** — mobility-adaptive hello intervals: "a mobility
//! adaptive cluster-based routing protocol ... will also affect the
//! update intervals between the Hello messages". Nodes in mobile
//! neighborhoods send hellos faster (fresher metric, quicker
//! reclustering detection) while calm nodes stay at the base 2 s rate.
//!
//! We sweep the adaptive floor and report the stability/overhead
//! trade: clusterhead changes vs hello broadcasts sent.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_scenario::{run_batch, ScenarioConfig};

fn main() {
    let seeds = seeds();
    println!("== §5 extension: mobility-adaptive hello intervals (MOBIC) ==\n");
    for speed in [20.0, 30.0] {
        let mut t = AsciiTable::new([
            "hello floor (s)",
            "CS @250m",
            "hellos sent",
            "overhead vs fixed %",
        ]);
        let mut fixed_hellos = 0.0;
        for floor in [0.0, 1.0, 0.5] {
            let mut cfg = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(AlgorithmKind::Mobic)
                .with_tx_range(250.0);
            cfg.max_speed_mps = speed;
            cfg.adaptive_bi_min_s = floor;
            let jobs: Vec<_> = seeds.iter().map(|&s| (cfg, s)).collect();
            let runs = run_batch(&jobs).expect("valid config");
            let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
            let hellos: OnlineStats = runs.iter().map(|r| r.hello_broadcasts as f64).collect();
            if floor == 0.0 {
                fixed_hellos = hellos.mean();
            }
            let label = if floor == 0.0 {
                "fixed 2 s (paper)".to_string()
            } else {
                format!("{floor}")
            };
            t.row([
                label,
                format!("{:.1}", cs.mean()),
                format!("{:.0}", hellos.mean()),
                format!(
                    "{:+.1}",
                    100.0 * (hellos.mean() - fixed_hellos) / fixed_hellos
                ),
            ]);
        }
        println!("MaxSpeed = {speed} m/s:");
        println!("{}", t.render());
        if let Err(e) =
            t.write_csv(mobic_bench::results_dir().join(format!("adaptive_bi_{speed:.0}.csv")))
        {
            eprintln!("warning: {e}");
        }
    }
    println!("(wrote results/adaptive_bi_*.csv)");
}
