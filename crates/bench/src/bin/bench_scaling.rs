//! **BENCH_scaling** — end-to-end event-loop scaling: brute-force vs
//! spatial-index fast path at constant paper density.
//!
//! For each population size the field grows with `√n` so node density
//! (and therefore mean degree) matches Table 1's 50 nodes on 670 m ×
//! 670 m. Each cell runs the identical `(cfg, seed)` once with
//! `fast_path: Off` and once with `On`, asserts the results are
//! identical, and records the end-to-end speedup.
//!
//! Environment:
//! * `MOBIC_SCALING_NS` — comma-separated populations (default
//!   `100,200,400,800`),
//! * `MOBIC_FAST` — shrink simulated time from 60 s to 20 s.
//!
//! Writes `results/BENCH_scaling.json`.

use std::time::Instant;

use mobic_metrics::AsciiTable;
use mobic_scenario::{manifest_for, run_scenario, FastPath, RunResult, ScenarioConfig};
use serde::Serialize;

/// One population-size cell of the scaling comparison.
#[derive(Debug, Serialize)]
struct ScalingRow {
    n: u32,
    field_m: f64,
    brute_ms: f64,
    indexed_ms: f64,
    speedup: f64,
    mean_candidates: f64,
    index_refreshes: u64,
    events: u64,
}

fn populations() -> Vec<u32> {
    std::env::var("MOBIC_SCALING_NS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<u32>().ok())
                .collect()
        })
        .filter(|ns: &Vec<u32>| !ns.is_empty())
        .unwrap_or_else(|| vec![100, 200, 400, 800])
}

fn cell_config(n: u32) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = n;
    // Constant density: area ∝ n, so side ∝ √n (50 nodes ↔ 670 m).
    let side = 670.0 * (f64::from(n) / 50.0).sqrt();
    cfg.field_w_m = side;
    cfg.field_h_m = side;
    cfg.sim_time_s = if std::env::var_os("MOBIC_FAST").is_some() {
        20.0
    } else {
        60.0
    };
    cfg.warmup_s = 5.0;
    cfg
}

fn timed(cfg: &ScenarioConfig, seed: u64) -> (RunResult, f64) {
    let t0 = Instant::now();
    let r = run_scenario(cfg, seed).expect("scaling configs are valid");
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let seed = 1u64;
    let mut rows = Vec::new();
    let mut manifests = Vec::new();
    let mut table = AsciiTable::new([
        "n",
        "field (m)",
        "brute (ms)",
        "indexed (ms)",
        "speedup",
        "cand/hello",
    ]);
    println!("== BENCH_scaling: brute-force vs spatial-index event loop ==\n");
    for n in populations() {
        let mut cfg = cell_config(n);
        cfg.fast_path = FastPath::Off;
        let (brute, brute_ms) = timed(&cfg, seed);
        cfg.fast_path = FastPath::On;
        let (fast, indexed_ms) = timed(&cfg, seed);
        assert!(fast.perf.indexed && !brute.perf.indexed);
        // The whole point: identical results, different cost.
        assert_eq!(fast.deliveries, brute.deliveries, "n={n}");
        assert_eq!(fast.final_roles, brute.final_roles, "n={n}");
        assert_eq!(fast.cluster_series, brute.cluster_series, "n={n}");
        assert_eq!(
            fast.clusterhead_changes_total, brute.clusterhead_changes_total,
            "n={n}"
        );
        let speedup = brute_ms / indexed_ms;
        // One manifest per executed run: the brute and indexed cells
        // differ only in `fast_path`, which the config echo captures.
        cfg.fast_path = FastPath::Off;
        manifests.push(manifest_for(&cfg, seed, &brute));
        cfg.fast_path = FastPath::On;
        manifests.push(manifest_for(&cfg, seed, &fast));
        table.row([
            format!("{n}"),
            format!("{:.0}", cfg.field_w_m),
            format!("{brute_ms:.1}"),
            format!("{indexed_ms:.1}"),
            format!("{speedup:.2}x"),
            format!("{:.1}", fast.perf.mean_candidates),
        ]);
        rows.push(ScalingRow {
            n,
            field_m: cfg.field_w_m,
            brute_ms,
            indexed_ms,
            speedup,
            mean_candidates: fast.perf.mean_candidates,
            index_refreshes: fast.perf.index_refreshes,
            events: fast.perf.events,
        });
    }
    println!("{}", table.render());
    let path = mobic_bench::results_dir().join("BENCH_scaling.json");
    match mobic_metrics::report::write_json(&rows, &path) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    match mobic_trace::write_manifests(&path, &manifests) {
        Ok(p) => println!("(wrote {})", p.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
}
