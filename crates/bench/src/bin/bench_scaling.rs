//! **BENCH_scaling** — end-to-end event-loop scaling at constant
//! paper density: brute-force vs spatial-index fast path vs the
//! sharded parallel engine.
//!
//! For each population size the field grows with `√n` so node density
//! (and therefore mean degree) matches Table 1's 50 nodes on 670 m ×
//! 670 m. Each cell runs the identical `(cfg, seed)`:
//!
//! * `fast_path: Off` (the reference scan) — only up to `n = 2000`,
//!   where the `O(n²)` cost stops being informative and starts being
//!   prohibitive;
//! * `fast_path: On` (indexed, sequential engine);
//! * `engine: sharded` (indexed + sharded parallel loop).
//!
//! and asserts the serialized results of every executed variant are
//! **byte-identical** before recording the speedups.
//!
//! Flags / environment:
//! * `--smoke` — tiny populations (`50,200`) and 20 s of simulated
//!   time, for CI;
//! * `--large` — append the `n = 100_000` cell;
//! * `--stretch` — append the `n = 1_000_000` cell (indexed + sharded
//!   only; expect minutes);
//! * `MOBIC_SCALING_NS` — comma-separated populations (overrides the
//!   defaults, composes with `--large`/`--stretch`),
//! * `MOBIC_FAST` — shrink simulated time from 60 s to 20 s,
//! * `MOBIC_SHARDS` — shard count for the sharded cells (default 0 =
//!   the engine's fixed fallback).
//!
//! Writes `results/BENCH_scaling.json`.

use std::time::Instant;

use mobic_metrics::AsciiTable;
use mobic_scenario::{manifest_for, run_scenario, Engine, FastPath, RunResult, ScenarioConfig};
use serde::Serialize;

/// Brute-force cells stop here: beyond it the `O(n²)` scan dominates
/// wall-clock without adding information (the equality proof already
/// ran at every smaller n).
const BRUTE_CAP: u32 = 2000;

/// Above this population the simulated time is clamped to 20 s so the
/// large/stretch cells finish; scaling is per-event, so the shorter
/// horizon does not distort the comparison.
const LARGE_N: u32 = 100_000;

/// One population-size cell of the scaling comparison.
#[derive(Debug, Serialize)]
struct ScalingRow {
    n: u32,
    field_m: f64,
    /// `None` when the brute-force reference was skipped (n > cap).
    brute_ms: Option<f64>,
    indexed_ms: f64,
    sharded_ms: f64,
    /// brute / indexed; `None` without a brute cell.
    speedup_index: Option<f64>,
    /// indexed / sharded (end-to-end, includes worker fork-join).
    speedup_sharded: f64,
    mean_candidates: f64,
    index_refreshes: u64,
    events: u64,
}

struct Args {
    smoke: bool,
    large: bool,
    stretch: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        large: false,
        stretch: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--large" => args.large = true,
            "--stretch" => args.stretch = true,
            other => {
                eprintln!("ignoring unknown argument {other:?} (known: --smoke --large --stretch)");
            }
        }
    }
    args
}

fn populations(args: &Args) -> Vec<u32> {
    let mut ns: Vec<u32> = std::env::var("MOBIC_SCALING_NS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<u32>().ok())
                .collect()
        })
        .filter(|ns: &Vec<u32>| !ns.is_empty())
        .unwrap_or_else(|| {
            if args.smoke {
                vec![50, 200]
            } else {
                vec![100, 200, 400, 800]
            }
        });
    if args.large {
        ns.push(100_000);
    }
    if args.stretch {
        ns.push(1_000_000);
    }
    ns
}

fn cell_config(n: u32, args: &Args) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = n;
    // Constant density: area ∝ n, so side ∝ √n (50 nodes ↔ 670 m).
    let side = 670.0 * (f64::from(n) / 50.0).sqrt();
    cfg.field_w_m = side;
    cfg.field_h_m = side;
    let fast = args.smoke || std::env::var_os("MOBIC_FAST").is_some();
    cfg.sim_time_s = if fast || n >= LARGE_N { 20.0 } else { 60.0 };
    cfg.warmup_s = 5.0;
    cfg
}

fn shard_count() -> u32 {
    std::env::var("MOBIC_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn timed(cfg: &ScenarioConfig, seed: u64) -> (RunResult, f64) {
    let t0 = Instant::now();
    let r = run_scenario(cfg, seed).expect("scaling configs are valid");
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn json_of(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

fn main() {
    let args = parse_args();
    let seed = 1u64;
    let shards = shard_count();
    let mut rows = Vec::new();
    let mut manifests = Vec::new();
    let mut table = AsciiTable::new([
        "n",
        "field (m)",
        "brute (ms)",
        "indexed (ms)",
        "sharded (ms)",
        "idx speedup",
        "shard speedup",
        "cand/hello",
    ]);
    println!("== BENCH_scaling: brute vs indexed vs sharded event loop ==\n");
    for n in populations(&args) {
        let mut cfg = cell_config(n, &args);

        cfg.fast_path = FastPath::On;
        let (fast, indexed_ms) = timed(&cfg, seed);
        assert!(fast.perf.indexed, "n={n}");
        manifests.push(manifest_for(&cfg, seed, &fast));

        cfg.engine = Engine::Sharded;
        cfg.shards = shards;
        let (sharded, sharded_ms) = timed(&cfg, seed);
        // The tentpole contract, end to end: the sharded engine's
        // serialized result is byte-identical to the sequential one.
        assert_eq!(json_of(&fast), json_of(&sharded), "n={n}");
        manifests.push(manifest_for(&cfg, seed, &sharded));
        cfg.engine = Engine::Sequential;
        cfg.shards = 0;

        let brute = if n <= BRUTE_CAP {
            cfg.fast_path = FastPath::Off;
            let (brute, brute_ms) = timed(&cfg, seed);
            assert!(!brute.perf.indexed, "n={n}");
            // Brute force takes a different candidate path, so the
            // perf echo differs; everything physical must agree.
            assert_eq!(fast.deliveries, brute.deliveries, "n={n}");
            assert_eq!(fast.final_roles, brute.final_roles, "n={n}");
            assert_eq!(fast.cluster_series, brute.cluster_series, "n={n}");
            assert_eq!(
                fast.clusterhead_changes_total, brute.clusterhead_changes_total,
                "n={n}"
            );
            manifests.push(manifest_for(&cfg, seed, &brute));
            cfg.fast_path = FastPath::On;
            Some(brute_ms)
        } else {
            None
        };

        let speedup_index = brute.map(|b| b / indexed_ms);
        let speedup_sharded = indexed_ms / sharded_ms;
        table.row([
            format!("{n}"),
            format!("{:.0}", cfg.field_w_m),
            brute.map_or_else(|| "-".to_string(), |b| format!("{b:.1}")),
            format!("{indexed_ms:.1}"),
            format!("{sharded_ms:.1}"),
            speedup_index.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
            format!("{speedup_sharded:.2}x"),
            format!("{:.1}", fast.perf.mean_candidates),
        ]);
        rows.push(ScalingRow {
            n,
            field_m: cfg.field_w_m,
            brute_ms: brute,
            indexed_ms,
            sharded_ms,
            speedup_index,
            speedup_sharded,
            mean_candidates: fast.perf.mean_candidates,
            index_refreshes: fast.perf.index_refreshes,
            events: fast.perf.events,
        });
    }
    println!("{}", table.render());
    let path = mobic_bench::results_dir().join("BENCH_scaling.json");
    match mobic_metrics::report::write_json(&rows, &path) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    match mobic_trace::write_manifests(&path, &manifests) {
        Ok(p) => println!("(wrote {})", p.display()),
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
}
