//! **X5 (§5 extension)** — does cluster stability translate into
//! routing performance? We run CBRP-flavored cluster routing on top of
//! LCC clusters vs. MOBIC clusters (plus the flooding baseline) and
//! measure route lifetime, availability, and discovery overhead.
//!
//! Expected: cluster routing discovers far cheaper than flooding
//! (backbone-only forwarding); on MOBIC clusters the cluster routes
//! live longer and need fewer repairs than on LCC clusters, because a
//! relay clusterhead losing its role is exactly a clusterhead change.

use mobic_bench::{apply_fast, seeds};
use mobic_core::AlgorithmKind;
use mobic_metrics::{AsciiTable, OnlineStats};
use mobic_routing::{experiment::RoutingExperiment, ClusterRouting, Discovery, Flooding};
use mobic_scenario::ScenarioConfig;

fn main() {
    let seeds = seeds();
    println!("== X5: routing over clusters (Tx = 250 m, 670 x 670 m, 10 flows) ==\n");
    let mut t = AsciiTable::new([
        "protocol",
        "clustering",
        "route life (s)",
        "availability",
        "mean hops",
        "discoveries",
        "fwd/discovery",
    ]);
    let cases: Vec<(&str, AlgorithmKind, bool)> = vec![
        ("flooding", AlgorithmKind::Lcc, false),
        ("cluster", AlgorithmKind::Lcc, true),
        ("cluster", AlgorithmKind::Mobic, true),
    ];
    for (proto, alg, clustered) in cases {
        let mut life = OnlineStats::new();
        let mut avail = OnlineStats::new();
        let mut hops = OnlineStats::new();
        let mut discoveries = OnlineStats::new();
        let mut cost = OnlineStats::new();
        for &seed in &seeds {
            let mut scenario = apply_fast(ScenarioConfig::paper_table1())
                .with_algorithm(alg)
                .with_tx_range(250.0);
            scenario.warmup_s = 30.0;
            let exp = RoutingExperiment {
                scenario,
                flows: 10,
            };
            let stats = if clustered {
                exp.run(&ClusterRouting, seed)
            } else {
                exp.run(&Flooding, seed)
            }
            .expect("valid scenario");
            life.push(stats.mean_route_lifetime_s);
            avail.push(stats.availability);
            hops.push(stats.mean_hops);
            discoveries.push(stats.discoveries as f64);
            cost.push(stats.total_discovery_cost as f64 / stats.discoveries.max(1) as f64);
        }
        t.row([
            proto.to_string(),
            alg.name().to_string(),
            format!("{:.1}", life.mean()),
            format!("{:.3}", avail.mean()),
            format!("{:.2}", hops.mean()),
            format!("{:.0}", discoveries.mean()),
            format!("{:.1}", cost.mean()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(fwd/discovery = nodes forwarding each route request — the flooding-suppression win)"
    );
    println!("sanity: {} vs {}", Flooding.name(), ClusterRouting.name());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("routing_gain.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/routing_gain.csv)");
}
