//! **Metric-validity analysis** — is the aggregate local mobility `M`
//! actually predictive? The paper's premise is that a low-`M` node
//! makes a durable clusterhead because its neighborhood is about to
//! stay put. We test that premise directly: correlate each node's
//! `M(t)` with the number of its link breaks in the following 30 s,
//! across every node and sampling instant of a full run.
//!
//! Output: the Pearson correlation and a quartile table (mean future
//! link breaks per M-quartile). A clearly positive association is what
//! licenses the whole algorithm.

use mobic_bench::{apply_fast, seeds};
use mobic_core::ClusterNode;
use mobic_metrics::AsciiTable;
use mobic_scenario::{run_scenario_observed, ScenarioConfig};

/// One observation: a node's metric now and its link breaks over the
/// lookahead horizon.
struct Snapshot {
    t_idx: usize,
    metrics: Vec<f64>,
    /// Neighbor bitmaps (true = within range) flattened n×n.
    links: Vec<bool>,
}

fn main() {
    let horizon_s = 30.0;
    let cfg = apply_fast(ScenarioConfig::paper_table1()).with_tx_range(250.0);
    let n = cfg.n_nodes as usize;
    let mut xs: Vec<f64> = Vec::new(); // M(t)
    let mut ys: Vec<f64> = Vec::new(); // future breaks

    for seed in seeds() {
        let mut snaps: Vec<Snapshot> = Vec::new();
        let range = cfg.tx_range_m;
        run_scenario_observed(&cfg, seed, |view| {
            let mut links = vec![false; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if view.positions[i].distance(view.positions[j]) <= range {
                        links[i * n + j] = true;
                    }
                }
            }
            snaps.push(Snapshot {
                t_idx: snaps.len(),
                metrics: view.nodes.iter().map(ClusterNode::metric).collect(),
                links,
            });
        })
        .expect("valid config");

        // Lookahead window in samples (one per BI).
        let window = (horizon_s / cfg.bi_s) as usize;
        let warmup_samples = (cfg.warmup_s / cfg.bi_s) as usize;
        for s in warmup_samples..snaps.len().saturating_sub(window) {
            debug_assert_eq!(snaps[s].t_idx, s);
            for i in 0..n {
                // Count i's link breaks within the window.
                let mut breaks = 0usize;
                for w in s..s + window {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let (a, b) = (i.min(j), i.max(j));
                        let now_linked = snaps[w].links[a * n + b];
                        let next_linked = snaps[w + 1].links[a * n + b];
                        if now_linked && !next_linked {
                            breaks += 1;
                        }
                    }
                }
                xs.push(snaps[s].metrics[i]);
                ys.push(breaks as f64);
            }
        }
    }

    let r = pearson(&xs, &ys);
    println!("== Metric validity: does M(t) predict link breaks in the next {horizon_s} s? ==\n");
    println!("observations: {}   Pearson r = {r:.3}\n", xs.len());

    // Quartile table.
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite"));
    let mut t = AsciiTable::new(["M quartile", "mean M", "mean future breaks"]);
    for q in 0..4 {
        let lo = q * order.len() / 4;
        let hi = ((q + 1) * order.len() / 4).max(lo + 1);
        let idxs = &order[lo..hi.min(order.len())];
        let mean_m = idxs.iter().map(|&i| xs[i]).sum::<f64>() / idxs.len() as f64;
        let mean_b = idxs.iter().map(|&i| ys[i]).sum::<f64>() / idxs.len() as f64;
        t.row([
            format!(
                "Q{} ({})",
                q + 1,
                ["calmest", "calm", "mobile", "most mobile"][q]
            ),
            format!("{mean_m:.2}"),
            format!("{mean_b:.2}"),
        ]);
    }
    println!("{}", t.render());
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("metric_validity.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/metric_validity.csv)");
    if r > 0.2 {
        println!("=> M is a useful predictor of imminent neighborhood change (r = {r:.3}).");
    } else {
        println!("=> weak association (r = {r:.3}) — see EXPERIMENTS.md discussion.");
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let nf = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    sxy / (sxx.sqrt() * syy.sqrt()).max(1e-12)
}
