//! **Table 1** — the simulation parameters, printed from the same
//! constants `ScenarioConfig::paper_table1()` is built from, plus a
//! consistency check against the config defaults.

use mobic_scenario::{params, ScenarioConfig};

fn main() {
    println!("== Table 1: Simulation Parameters ==");
    print!("{}", params::render_table1());
    let cfg = ScenarioConfig::paper_table1();
    println!();
    println!(
        "ScenarioConfig::paper_table1(): N={} field={}x{} m BI={}s TP={}s CCI={}s S={}s",
        cfg.n_nodes, cfg.field_w_m, cfg.field_h_m, cfg.bi_s, cfg.tp_s, cfg.cci_s, cfg.sim_time_s
    );
}
