//! **BENCH_hotpath** — allocation discipline and per-event cost of the
//! event loop, plus the dirty-set incremental-reclustering speedup.
//!
//! A counting global allocator tallies every heap allocation of the
//! process. Each cell is measured with a *two-horizon diff*: the same
//! `(cfg, seed)` runs once to `T1` and once to `T2 > T1`; because the
//! event stream over `[0, T1]` is identical in both runs, setup and
//! bootstrap costs cancel and
//!
//! ```text
//! steady-state allocs/event = (A(T2) − A(T1)) / (E(T2) − E(T1))
//! ```
//!
//! isolates the loop's steady-state behavior. Two cells:
//!
//! * **mobile** — RandomWaypoint/MOBIC at n = `MOBIC_HOTPATH_N`
//!   (default 200): reports ns/event under `recluster: full` vs
//!   `incremental` (the headline speedup) and the steady-state
//!   allocation rate (nonzero here: motion keeps creating genuinely
//!   new neighbor entries);
//! * **stationary** — a converged static network, where the loop's
//!   zero-allocation claim is exact: in release builds the cell must
//!   measure **0 allocations per steady-state event**.
//!
//! Every full/incremental pair is asserted equal field-by-field — the
//! skip optimization must be invisible in the results.
//!
//! A third section compares the **hot-path microarchitecture** knobs
//! on the mobile cell: heap vs calendar scheduler, scalar vs
//! vectorized delivery kernel (under lossless delivery), and per-edge
//! vs batched loss-RNG draws (under Bernoulli loss). Every variant's
//! serialized `RunResult` is byte-compared against its cell baseline —
//! the knobs must buy time, never change results.
//!
//! Environment: `MOBIC_HOTPATH_N` (default 200), `MOBIC_FAST` (shrink
//! horizons), `MOBIC_SCHEDULER` (`heap`|`calendar`, the scheduler for
//! the recluster cells — CI smokes the whole suite under `calendar`).
//! `--smoke` runs a small fast version and enforces the
//! zero-allocation assertion (CI's steady-state gate); `--json` emits
//! the full report as JSON on stdout instead of ASCII tables.
//!
//! Writes `results/BENCH_hotpath.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mobic_metrics::AsciiTable;
use mobic_scenario::{
    manifest_for, run_scenario, DeliveryPath, LossKind, MobilityKind, Recluster, RunResult,
    ScenarioConfig, Scheduler,
};
use serde::Serialize;

/// `System`, with every allocation counted. Deallocations are free of
/// interest here; `realloc` and `alloc_zeroed` count because growing a
/// `Vec` mid-loop is exactly the bug this benchmark polices.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured cell of the report.
#[derive(Debug, Serialize)]
struct HotpathRow {
    cell: &'static str,
    n: u32,
    recluster: &'static str,
    /// Steady-state wall-clock cost per event (two-horizon diff).
    ns_per_event: f64,
    /// Steady-state heap allocations per event (two-horizon diff).
    allocs_per_event: f64,
    /// Skip counter of the long-horizon run.
    elections_skipped: u64,
    /// Events processed by the long-horizon run.
    events: u64,
}

/// One microarchitecture comparison row: a (scheduler, delivery)
/// variant of a fixed cell.
#[derive(Debug, Serialize)]
struct MicroarchRow {
    cell: &'static str,
    n: u32,
    scheduler: &'static str,
    delivery: &'static str,
    /// Steady-state wall-clock cost per event (two-horizon diff).
    ns_per_event: f64,
    /// Steady-state heap allocations per event (two-horizon diff).
    allocs_per_event: f64,
    /// Events processed by the long-horizon run.
    events: u64,
}

/// The full machine-readable report (`--json`, and the JSON artifact).
#[derive(Debug, Serialize)]
struct HotpathReport {
    recluster: Vec<HotpathRow>,
    microarch: Vec<MicroarchRow>,
}

struct Measured {
    result: RunResult,
    allocs: u64,
    ns: f64,
}

fn measured(cfg: &ScenarioConfig, seed: u64) -> Measured {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let result = run_scenario(cfg, seed).expect("hotpath configs are valid");
    let ns = t0.elapsed().as_nanos() as f64;
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    Measured { result, allocs, ns }
}

/// Runs `cfg` to both horizons and returns
/// (allocs/event, ns/event, long-horizon measurement) for the
/// steady-state window `(t1, t2]`.
fn steady_state(cfg: &ScenarioConfig, seed: u64, t1: f64, t2: f64) -> (f64, f64, Measured) {
    let mut short = *cfg;
    short.sim_time_s = t1;
    let mut long = *cfg;
    long.sim_time_s = t2;
    let a = measured(&short, seed);
    let b = measured(&long, seed);
    let events = b.result.perf.events - a.result.perf.events;
    assert!(events > 0, "horizons too close: no steady-state window");
    let allocs = b.allocs.saturating_sub(a.allocs);
    (
        allocs as f64 / events as f64,
        (b.ns - a.ns).max(0.0) / events as f64,
        b,
    )
}

/// Field-by-field equality of the measurements the skip could perturb.
fn assert_identical(full: &RunResult, incr: &RunResult, label: &str) {
    assert_eq!(full.final_roles, incr.final_roles, "{label}: roles");
    assert_eq!(full.deliveries, incr.deliveries, "{label}: deliveries");
    assert_eq!(full.cluster_series, incr.cluster_series, "{label}: series");
    assert_eq!(
        full.clusterhead_changes_total, incr.clusterhead_changes_total,
        "{label}: CS"
    );
    assert_eq!(
        full.role_transitions, incr.role_transitions,
        "{label}: transitions"
    );
}

fn base_config(n: u32, mobility: MobilityKind) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = n;
    // Constant paper density: area ∝ n (50 nodes ↔ 670 m side).
    let side = 670.0 * (f64::from(n) / 50.0).sqrt();
    cfg.field_w_m = side;
    cfg.field_h_m = side;
    cfg.mobility = mobility;
    cfg.warmup_s = 5.0;
    cfg
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let fast = smoke || std::env::var_os("MOBIC_FAST").is_some();
    let n: u32 = if smoke {
        40
    } else {
        std::env::var("MOBIC_HOTPATH_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200)
    };
    let scheduler = match std::env::var("MOBIC_SCHEDULER").as_deref() {
        Ok("calendar") => Scheduler::Calendar,
        Ok("heap") | Err(_) => Scheduler::Heap,
        Ok(other) => panic!("MOBIC_SCHEDULER must be heap|calendar, got {other:?}"),
    };
    let (t1, t2) = if fast { (30.0, 60.0) } else { (60.0, 180.0) };
    let seed = 1u64;
    let mut rows = Vec::new();
    let mut manifests = Vec::new();
    let mut table = AsciiTable::new(["cell", "recluster", "ns/event", "allocs/event", "skipped"]);
    if !json {
        println!("== BENCH_hotpath: steady-state allocations and incremental reclustering ==\n");
    }

    let mut cells = [
        ("mobile", base_config(n, MobilityKind::RandomWaypoint)),
        ("stationary", base_config(n, MobilityKind::Stationary)),
    ];
    for (_, cfg) in &mut cells {
        cfg.scheduler = scheduler;
    }
    for (cell, cfg) in cells {
        let mut by_mode = Vec::new();
        for (mode, label) in [
            (Recluster::Full, "full"),
            (Recluster::Incremental, "incremental"),
        ] {
            let mut c = cfg;
            c.recluster = mode;
            let (allocs_per_event, ns_per_event, long) = steady_state(&c, seed, t1, t2);
            table.row([
                cell.to_string(),
                label.to_string(),
                format!("{ns_per_event:.0}"),
                format!("{allocs_per_event:.3}"),
                format!("{}", long.result.perf.phase_ms.elections_skipped),
            ]);
            rows.push(HotpathRow {
                cell,
                n,
                recluster: label,
                ns_per_event,
                allocs_per_event,
                elections_skipped: long.result.perf.phase_ms.elections_skipped,
                events: long.result.perf.events,
            });
            let mut c2 = c;
            c2.sim_time_s = t2;
            manifests.push(manifest_for(&c2, seed, &long.result));
            by_mode.push((allocs_per_event, long.result));
        }
        let (_, full_r) = &by_mode[0];
        let (incr_allocs, incr_r) = &by_mode[1];
        assert_identical(full_r, incr_r, cell);
        assert_eq!(
            full_r.perf.phase_ms.elections_skipped, 0,
            "{cell}: full must not skip"
        );
        // The tentpole claim: once a static network has converged, the
        // loop allocates nothing at all. Debug builds re-prove every
        // skip on a heap-allocated clone, so the gate is release-only.
        if cell == "stationary" && !cfg!(debug_assertions) {
            assert_eq!(
                *incr_allocs, 0.0,
                "stationary steady state must be allocation-free"
            );
            if !json {
                println!("(stationary steady state: 0 allocations/event)");
            }
        }
    }
    if !json {
        println!("{}", table.render());
    }

    // Microarchitecture comparison: heap vs calendar scheduler and
    // scalar vs vectorized delivery on the mobile cell. The lossless
    // sub-cell isolates the propagation kernel; the Bernoulli sub-cell
    // adds per-edge vs batched loss-RNG draws. Each variant must
    // serialize byte-identically to its cell baseline.
    let mut microarch = Vec::new();
    let mut mtable = AsciiTable::new(["cell", "scheduler", "delivery", "ns/event", "allocs/event"]);
    let loss_cells: [(&'static str, LossKind); 2] = [
        ("microarch", LossKind::None),
        ("microarch-loss", LossKind::Bernoulli { p: 0.1 }),
    ];
    for (cell, loss) in loss_cells {
        let mut cfg = base_config(n, MobilityKind::RandomWaypoint);
        cfg.recluster = Recluster::Incremental;
        cfg.loss = loss;
        let mut baseline: Option<String> = None;
        for (sched, sched_label) in [(Scheduler::Heap, "heap"), (Scheduler::Calendar, "calendar")] {
            for (delivery, delivery_label) in [
                (DeliveryPath::Scalar, "scalar"),
                (DeliveryPath::Auto, "vectorized"),
            ] {
                let mut c = cfg;
                c.scheduler = sched;
                c.delivery = delivery;
                let (allocs_per_event, ns_per_event, long) = steady_state(&c, seed, t1, t2);
                let bytes = serde_json::to_string(&long.result).expect("results serialize");
                match &baseline {
                    None => baseline = Some(bytes),
                    Some(want) => assert_eq!(
                        want, &bytes,
                        "{cell}: {sched_label}/{delivery_label} diverged from baseline"
                    ),
                }
                mtable.row([
                    cell.to_string(),
                    sched_label.to_string(),
                    delivery_label.to_string(),
                    format!("{ns_per_event:.0}"),
                    format!("{allocs_per_event:.3}"),
                ]);
                microarch.push(MicroarchRow {
                    cell,
                    n,
                    scheduler: sched_label,
                    delivery: delivery_label,
                    ns_per_event,
                    allocs_per_event,
                    events: long.result.perf.events,
                });
            }
        }
    }
    if !json {
        println!("{}", mtable.render());
    }

    let report = HotpathReport {
        recluster: rows,
        microarch,
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    }
    if smoke {
        if !json {
            println!("smoke OK: results identical across variants, steady state allocation-free");
        }
        return;
    }
    let path = mobic_bench::results_dir().join("BENCH_hotpath.json");
    match mobic_metrics::report::write_json(&report, &path) {
        Ok(()) => {
            if !json {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    match mobic_trace::write_manifests(&path, &manifests) {
        Ok(p) => {
            if !json {
                println!("(wrote {})", p.display());
            }
        }
        Err(e) => eprintln!("warning: could not write manifest: {e}"),
    }
}
