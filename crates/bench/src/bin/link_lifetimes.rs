//! **Link-dynamics analysis** — the mechanism behind Figure 3's
//! rise-and-fall. Using the exact piecewise-linear link analysis
//! (`mobic_mobility::analysis`), we compute the closed-form link
//! lifetime distribution and link birth rate of the paper's scenario
//! for each transmission range.
//!
//! Reading: clusterhead churn tracks link volatility. At tiny ranges
//! few links exist at all; at mid ranges many *short* links churn
//! (the Figure-3 peak); at large ranges links are long-lived and the
//! churn falls.

use mobic_bench::seeds;
use mobic_metrics::{AsciiTable, Histogram, SummaryStats};
use mobic_mobility::{
    analysis::link_lifetimes, Mobility, RandomWaypoint, RandomWaypointParams, Trajectory,
};
use mobic_scenario::ScenarioConfig;
use mobic_sim::{rng::SeedSplitter, SimTime};

fn trajectories(cfg: &ScenarioConfig, seed: u64, horizon: SimTime) -> Vec<Trajectory> {
    let params = RandomWaypointParams {
        field: mobic_geom::Rect::new(cfg.field_w_m, cfg.field_h_m),
        min_speed_mps: cfg.min_speed_mps,
        max_speed_mps: cfg.max_speed_mps,
        pause: SimTime::from_secs_f64(cfg.pause_s),
    };
    let splitter = SeedSplitter::new(seed);
    (0..cfg.n_nodes)
        .map(|i| {
            let mut m = RandomWaypoint::new(params, splitter.stream("mobility", u64::from(i)));
            let _ = m.position_at(horizon); // extend
            m.trajectory().clone()
        })
        .collect()
}

fn main() {
    let cfg = ScenarioConfig::paper_table1();
    let horizon = SimTime::from_secs_f64(cfg.sim_time_s);
    println!("== Link dynamics (exact, 670 x 670 m, MaxSpeed 20 m/s, 900 s) ==\n");
    let mut t = AsciiTable::new([
        "Tx (m)",
        "completed links",
        "mean life (s)",
        "median life (s)",
        "short (<10 s) %",
        "births/s",
    ]);
    for tx in [10.0, 25.0, 50.0, 100.0, 150.0, 250.0] {
        let mut all: Vec<f64> = Vec::new();
        let seeds = seeds();
        for &seed in &seeds {
            let trajs = trajectories(&cfg, seed, horizon);
            all.extend(link_lifetimes(&trajs, tx, horizon));
        }
        if all.is_empty() {
            t.row([
                format!("{tx:.0}"),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let stats = SummaryStats::from_samples(&all);
        let short = all.iter().filter(|&&d| d < 10.0).count() as f64 / all.len() as f64;
        let births = all.len() as f64 / (seeds.len() as f64 * cfg.sim_time_s);
        t.row([
            format!("{tx:.0}"),
            format!("{}", all.len()),
            format!("{:.1}", stats.mean),
            format!("{:.1}", stats.median),
            format!("{:.1}", 100.0 * short),
            format!("{births:.2}"),
        ]);
    }
    println!("{}", t.render());
    println!("(completed = entered AND left range within the run; censored links excluded)");

    // Distribution detail at the paper's headline range.
    {
        let mut all: Vec<f64> = Vec::new();
        for &seed in &seeds() {
            let trajs = trajectories(&cfg, seed, horizon);
            all.extend(link_lifetimes(&trajs, 250.0, horizon));
        }
        let mut hist = Histogram::new(0.0, 200.0, 10);
        hist.extend(all.iter().copied());
        println!("\nlink lifetime distribution at Tx = 250 m (seconds):");
        print!("{}", hist.render(40));
    }
    if let Err(e) = t.write_csv(mobic_bench::results_dir().join("link_lifetimes.csv")) {
        eprintln!("warning: {e}");
    }
    println!("(wrote results/link_lifetimes.csv)");
}
