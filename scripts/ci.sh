#!/usr/bin/env bash
# CI gate: formatting, lints, docs, tier-1 build+tests, and a smoke
# run of the brute-vs-indexed scaling bench (which asserts result
# equality, so a regression in either event-loop path fails the
# script).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (broken links and missing docs are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== doctests =="
cargo test --doc -q

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== scaling smoke (brute vs indexed equality + speedup) =="
MOBIC_FAST=1 MOBIC_SCALING_NS=50,200 \
    cargo run --release -p mobic-bench --bin bench_scaling

echo "== hot-path smoke (steady state must be allocation-free) =="
cargo run --release -p mobic-bench --bin bench_hotpath -- --smoke

echo "CI OK"
