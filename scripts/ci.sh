#!/usr/bin/env bash
# CI gate: formatting, lints, docs, tier-1 build+tests, a sharded-
# equivalence smoke, a smoke run of the brute-vs-indexed-vs-sharded
# scaling bench (which asserts result equality, so a regression in any
# event-loop path fails the script), a checkpoint kill/resume drill
# (run -> SIGKILL -> resume -> byte-compare), and a live mobic-sweepd
# service smoke (submit, full cache hit on resubmit, graceful drain).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== mobic-lint (static invariants; offline-capable, fail-fast) =="
# The linter is zero-dependency by design so this stage runs even
# where the cargo registry is unreachable: if the cargo build cannot
# resolve the workspace, fall back to bare rustc (lib rlib + binary).
if cargo build --release -p mobic-lint 2>/dev/null; then
    cargo run --release -q -p mobic-lint -- --json >/dev/null
    cargo run --release -q -p mobic-lint
else
    echo "   (cargo unavailable; building mobic-lint with bare rustc)"
    mkdir -p target/lint-fallback
    rustc --edition 2021 -O --crate-type rlib --crate-name mobic_lint \
        crates/lint/src/lib.rs -o target/lint-fallback/libmobic_lint.rlib
    rustc --edition 2021 -O crates/lint/src/main.rs \
        --extern mobic_lint=target/lint-fallback/libmobic_lint.rlib \
        -o target/lint-fallback/mobic-lint
    ./target/lint-fallback/mobic-lint --json >/dev/null
    ./target/lint-fallback/mobic-lint
fi

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
# `unwrap_used`/`unreachable_pub` are the advisory tier from
# `[workspace.lints]`: they warn in dev builds, while mobic-lint's
# scoped `panic-in-lib` rule is the hard gate — so cap them back to
# allow here to keep `-D warnings` from escalating the advisory tier.
cargo clippy --workspace --all-targets -- -D warnings \
    -A unreachable-pub -A clippy::unwrap-used

echo "== rustdoc (broken links and missing docs are errors) =="
# Same advisory-tier cap as clippy: the `[lints]` table reaches
# rustdoc for rust-group lints, so `unreachable_pub` must not escalate.
RUSTDOCFLAGS="-D warnings -A unreachable_pub" cargo doc --workspace --no-deps --quiet

echo "== doctests =="
cargo test --doc -q

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== sharded-equivalence smoke (2 shards must be byte-identical) =="
cargo test --release --test sharded_equivalence -q smoke_two_shards_byte_identical

echo "== scheduler-equivalence smoke (calendar + kernel must be byte-identical) =="
cargo test --release --test scheduler_equivalence -q smoke_calendar_byte_identical

echo "== scaling smoke (brute vs indexed vs sharded equality + speedup) =="
MOBIC_SHARDS=2 cargo run --release -p mobic-bench --bin bench_scaling -- --smoke

echo "== hot-path smoke (steady state must be allocation-free) =="
cargo run --release -p mobic-bench --bin bench_hotpath -- --smoke
# The same gate under the calendar scheduler: zero-alloc steady state
# and variant byte-identity must hold for the bucketed queue too.
MOBIC_SCHEDULER=calendar cargo run --release -p mobic-bench --bin bench_hotpath -- --smoke

echo "== fault-plan + supervision suite =="
# The supervised-batch tests exercise the deliberate panic/delay
# fault hooks: one job panics under catch_unwind and is reported as
# RunError::Panicked while its siblings complete.
cargo test --release --test failure_injection -q
cargo test --release -p mobic-scenario sweep -q

echo "== resume smoke (interrupted sweep continues from cell files) =="
RESUME_DIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_DIR"' EXIT
cargo run --release -p mobic-cli -- sweep \
    --nodes 10 --time 30 --tx-sweep 150:200:50 --seeds 2 \
    --algorithms lcc --out "$RESUME_DIR" >/dev/null
test -f "$RESUME_DIR/cell_lcc_tx150.json"
# Second pass must skip every finished cell.
cargo run --release -p mobic-cli -- sweep \
    --nodes 10 --time 30 --tx-sweep 150:200:50 --seeds 2 \
    --algorithms lcc --out "$RESUME_DIR" --resume 2>&1 >/dev/null \
    | grep -q "resume:"

echo "== checkpoint smoke (run -> kill -> resume -> byte-compare) =="
# The randomized kill/resume equivalence suite first (engine x
# scheduler cube, all five algorithms, proptest-chosen kill points)…
cargo test --release --test checkpoint_equivalence -q
# …then a process-level drill: SIGKILL a checkpointing run (no
# cleanup handler — exactly the crash the snapshots exist for) and
# prove the rerun resumes and reproduces the reference bytes.
CKPT_DIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_DIR" "$CKPT_DIR"' EXIT
CKPT_ARGS=(run --nodes 80 --time 600 --algorithm mobic --seed 7 --json)
cargo build --release -q -p mobic-cli
./target/release/mobic-cli "${CKPT_ARGS[@]}" > "$CKPT_DIR/ref.json"
./target/release/mobic-cli "${CKPT_ARGS[@]}" \
    --checkpoint-dir "$CKPT_DIR/snaps" --checkpoint-every 0.001 \
    >/dev/null 2>&1 &
CKPT_PID=$!
# Kill as soon as the first snapshot lands; if the run finishes first,
# the snapshots it left behind still drive the resume below.
for _ in $(seq 1 200); do
    ls "$CKPT_DIR/snaps"/*.ckpt >/dev/null 2>&1 && break
    kill -0 "$CKPT_PID" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$CKPT_PID" 2>/dev/null || true
wait "$CKPT_PID" 2>/dev/null || true
# At least one snapshot must have survived the kill intact…
ls "$CKPT_DIR/snaps"/*.ckpt >/dev/null
# …and the rerun must restore it and emit byte-identical JSON.
./target/release/mobic-cli "${CKPT_ARGS[@]}" \
    --checkpoint-dir "$CKPT_DIR/snaps" --checkpoint-every 0.001 \
    > "$CKPT_DIR/resumed.json" 2> "$CKPT_DIR/resumed.log"
grep -q "checkpoint: resuming at event" "$CKPT_DIR/resumed.log"
cmp "$CKPT_DIR/ref.json" "$CKPT_DIR/resumed.json"

echo "== sweepd service smoke (submit, 100% cache hit on resubmit, drain) =="
SWEEPD_DIR="$(mktemp -d)"
SWEEPD_LOG="$SWEEPD_DIR/sweepd.log"
SWEEPD_PID=""
cleanup() {
    if [ -n "$SWEEPD_PID" ]; then kill "$SWEEPD_PID" 2>/dev/null || true; fi
    rm -rf "$RESUME_DIR" "$CKPT_DIR" "$SWEEPD_DIR"
}
trap cleanup EXIT
cargo build --release -q -p mobic-sweepd -p mobic-cli
# Ephemeral port: the announce line carries the resolved address.
./target/release/mobic-sweepd --addr 127.0.0.1:0 \
    --cache "$SWEEPD_DIR/cache" --workers 2 >"$SWEEPD_LOG" &
SWEEPD_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$SWEEPD_LOG" 2>/dev/null && break
    sleep 0.1
done
ADDR="$(sed -n 's/^mobic-sweepd listening on \([^ ]*\).*/\1/p' "$SWEEPD_LOG")"
test -n "$ADDR"
./target/release/mobic-cli sweep --server "$ADDR" \
    --nodes 10 --time 30 --tx-sweep 150:200:50 --seeds 2 \
    --algorithms lcc >/dev/null
# The identical spec resubmitted must be answered entirely from the
# cache: two cells cached, zero queued, zero scenario runs.
./target/release/mobic-cli sweep --server "$ADDR" \
    --nodes 10 --time 30 --tx-sweep 150:200:50 --seeds 2 \
    --algorithms lcc 2>&1 >/dev/null \
    | grep -q "(2 from cache, 0 queued)"
./target/release/mobic-cli drain --server "$ADDR" 2>/dev/null
wait "$SWEEPD_PID"
SWEEPD_PID=""

echo "CI OK"
