#!/usr/bin/env bash
# Regenerates every table/figure/ablation of the MOBIC reproduction.
# Outputs land in results/ (CSV + JSON) and results/logs/ (console).
# Environment: MOBIC_SEEDS=<n> (default 5), MOBIC_FAST=1 for 180 s runs.
#
# Iterating on the sweep-shaped experiments (fig3/fig4/fig5-style
# grids)? Run them through the mobic-sweepd service instead, so
# revisited grids answer from the content-addressed cell cache with
# zero recomputation:
#   cargo run --release -p mobic-sweepd -- --cache results/cache &
#   cargo run --release -p mobic-cli -- sweep --server 127.0.0.1:7700 \
#       --tx-sweep 10:250:25 --algorithms lcc,mobic --seeds "${MOBIC_SEEDS:-5}"
# See docs/OPERATIONS.md ("The sweep service") and EXPERIMENTS.md
# ("Sweep campaigns through the service") for full recipes.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results/logs
BINS=(table1 fig1 fig3 fig4 fig5 fig6 scaling baselines
      ablation_history ablation_cci ablation_patience ablation_quantum
      ablation_loss ablation_collisions scenarios_special
      metric_validity group_purity routing_gain link_lifetimes adaptive_bi fairness ablation_aggregation render_figures)
for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  cargo run --release -q -p mobic-bench --bin "$bin" | tee "results/logs/$bin.txt"
done
echo "All experiments complete. See EXPERIMENTS.md for the paper-vs-measured record."
