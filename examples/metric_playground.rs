//! The mobility metric by hand: two nodes on scripted trajectories,
//! real Friis radio, and the exact `M_rel` / `M` computation a MOBIC
//! node performs (§3.1 of the paper).
//!
//! ```text
//! cargo run --release --example metric_playground
//! ```

use mobic::core::metric::{aggregate_mobility, relative_mobility};
use mobic::geom::Vec2;
use mobic::mobility::{Mobility, Waypoints};
use mobic::radio::{FreeSpace, Radio};
use mobic::sim::SimTime;

fn main() {
    // Node Y sits at the origin. Neighbor A approaches it head-on at
    // 10 m/s; neighbor B recedes at 5 m/s.
    let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 250.0);
    let mut a = Waypoints::new(
        Vec2::new(200.0, 0.0),
        vec![(SimTime::from_secs(18), Vec2::new(20.0, 0.0))],
    );
    let mut b = Waypoints::new(
        Vec2::new(0.0, 60.0),
        vec![(SimTime::from_secs(18), Vec2::new(0.0, 150.0))],
    );

    println!("t(s)   d(Y,A)  RxPr(A)      M_rel(A)   d(Y,B)  RxPr(B)      M_rel(B)   M_Y");
    let bi = SimTime::from_secs(2); // the paper's broadcast interval
    let mut prev: Option<(f64, f64)> = None;
    for k in 0..=9u64 {
        let t = bi * k;
        let da = a.position_at(t).length();
        let db = b.position_at(t).length();
        let pa = radio.rx_power(da).dbm();
        let pb = radio.rx_power(db).dbm();
        match prev {
            None => println!(
                "{:4}   {:6.1}  {:8.2} dBm  {:>8}   {:6.1}  {:8.2} dBm  {:>8}   {:>6}",
                t.as_secs_f64(),
                da,
                pa,
                "-",
                db,
                pb,
                "-",
                "-"
            ),
            Some((qa, qb)) => {
                let m_a = relative_mobility(mobic::radio::Dbm::new(qa), mobic::radio::Dbm::new(pa));
                let m_b = relative_mobility(mobic::radio::Dbm::new(qb), mobic::radio::Dbm::new(pb));
                let m_y = aggregate_mobility([m_a, m_b]);
                println!(
                    "{:4}   {:6.1}  {:8.2} dBm  {:+8.2}   {:6.1}  {:8.2} dBm  {:+8.2}   {:6.2}",
                    t.as_secs_f64(),
                    da,
                    pa,
                    m_a,
                    db,
                    pb,
                    m_b,
                    m_y
                );
            }
        }
        prev = Some((pa, pb));
    }
    println!();
    println!("M_rel > 0: approaching (received power rising);");
    println!("M_rel < 0: receding;   M_Y = var_0 of the pairwise values (Eq. 2).");
    println!("Note the log scale: the same 10 m/s causes bigger dB swings up close.");
}
