//! Routing over clusters (§5 of the paper, built out): compare
//! flooding discovery with CBRP-style cluster routing running on top
//! of LCC clusters and on top of MOBIC clusters.
//!
//! ```text
//! cargo run --release --example routing_over_clusters
//! ```

use mobic::core::AlgorithmKind;
use mobic::routing::{experiment::RoutingExperiment, ClusterRouting, Flooding};
use mobic::scenario::ScenarioConfig;

fn main() {
    let mut scenario = ScenarioConfig::paper_table1();
    scenario.sim_time_s = 300.0;
    scenario.tx_range_m = 250.0;
    scenario.warmup_s = 30.0;

    println!("Routing: 50 nodes, 670x670 m, Tx 250 m, 10 flows, 300 s\n");
    println!(
        "{:<10} {:<10} {:>14} {:>13} {:>10} {:>15}",
        "protocol", "clusters", "route life (s)", "availability", "mean hops", "fwd/discovery"
    );
    let cases = [
        ("flooding", AlgorithmKind::Lcc, false),
        ("cluster", AlgorithmKind::Lcc, true),
        ("cluster", AlgorithmKind::Mobic, true),
    ];
    for (name, alg, clustered) in cases {
        let exp = RoutingExperiment {
            scenario: scenario.with_algorithm(alg),
            flows: 10,
        };
        let stats = if clustered {
            exp.run(&ClusterRouting, 5)
        } else {
            exp.run(&Flooding, 5)
        }
        .expect("valid scenario");
        println!(
            "{:<10} {:<10} {:>14.1} {:>13.3} {:>10.2} {:>15.1}",
            name,
            alg.name(),
            stats.mean_route_lifetime_s,
            stats.availability,
            stats.mean_hops,
            stats.total_discovery_cost as f64 / stats.discoveries.max(1) as f64,
        );
    }
    println!("\ncluster routing floods only the clusterhead/gateway backbone (cheap");
    println!("discovery); on MOBIC's stabler clusters the routes also live longer.");
}
