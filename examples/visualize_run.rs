//! Visualize a live run: write SVG snapshots of the cluster structure
//! at a few instants, and print an ASCII view plus a cluster-count
//! sparkline to the terminal.
//!
//! ```text
//! cargo run --release --example visualize_run
//! # → results/snapshots/clusters_t*.svg
//! ```

use mobic::core::AlgorithmKind;
use mobic::geom::Rect;
use mobic::scenario::{run_scenario_observed, ScenarioConfig};
use mobic::viz::{sparkline, ClusterScene, SvgStyle};

fn main() -> std::io::Result<()> {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = 300.0;
    cfg.tx_range_m = 150.0;
    cfg.algorithm = AlgorithmKind::Mobic;
    let field = Rect::new(cfg.field_w_m, cfg.field_h_m);

    let out_dir = std::path::Path::new("results/snapshots");
    std::fs::create_dir_all(out_dir)?;

    let snapshot_times = [30.0, 150.0, 300.0];
    let mut cluster_counts: Vec<f64> = Vec::new();
    let mut last_scene: Option<ClusterScene> = None;
    let mut written = Vec::new();

    run_scenario_observed(&cfg, 7, |view| {
        let scene = ClusterScene::from_view(&view, field, cfg.tx_range_m);
        cluster_counts.push(scene.clusterheads().len() as f64);
        let t = view.now.as_secs_f64();
        if snapshot_times
            .iter()
            .any(|&s| (t - s).abs() < cfg.bi_s / 2.0)
        {
            let path = out_dir.join(format!("clusters_t{t:04.0}.svg"));
            if mobic::trace::write_atomic(&path, scene.to_svg(&SvgStyle::default())).is_ok() {
                written.push(path);
            }
        }
        last_scene = Some(scene);
    })
    .expect("valid config");

    println!(
        "MOBIC run: 50 nodes, 670x670 m, Tx {} m, {} s\n",
        cfg.tx_range_m, cfg.sim_time_s
    );
    if let Some(scene) = &last_scene {
        println!("final cluster structure (# = clusterhead, G = gateway, o = member):");
        println!("{}", scene.to_ascii(66, 22));
    }
    println!("clusters over time: {}", sparkline(&cluster_counts));
    println!(
        "                    {} samples, min {:.0}, max {:.0}",
        cluster_counts.len(),
        cluster_counts.iter().copied().fold(f64::INFINITY, f64::min),
        cluster_counts.iter().copied().fold(0.0f64, f64::max),
    );
    for p in written {
        println!("wrote {}", p.display());
    }
    Ok(())
}
