//! Highway convoys (§5 of the paper): four lanes of traffic at
//! 25 m/s. Within a lane, relative mobility is tiny; across opposing
//! lanes it is huge — exactly the structure MOBIC's metric separates.
//!
//! ```text
//! cargo run --release --example highway_convoy
//! ```

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_scenario, MobilityKind, ScenarioConfig};

fn main() {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.field_w_m = 1000.0;
    cfg.field_h_m = 100.0; // a 1 km highway strip
    cfg.mobility = MobilityKind::Highway {
        lanes: 4,
        bidirectional: false,
    };
    cfg.max_speed_mps = 25.0; // ~90 km/h lane speed
    cfg.tx_range_m = 150.0;
    cfg.sim_time_s = 300.0;

    println!("Highway: 50 cars, 4 lanes (one-way convoy road), 25 m/s, Tx 150 m\n");
    let mut cs = Vec::new();
    for alg in [AlgorithmKind::Lcc, AlgorithmKind::Mobic] {
        let r = run_scenario(&cfg.with_algorithm(alg), 7).expect("valid config");
        println!(
            "{:>9}: {:>4} clusterhead changes | {:>4.1} clusters | mean M = {:.2}",
            alg.name(),
            r.clusterhead_changes,
            r.avg_clusters,
            r.mean_aggregate_metric,
        );
        cs.push(r.clusterhead_changes as f64);
    }
    println!(
        "\nMOBIC gain: {:+.1}% — convoys reward mobility-aware clusterhead choice",
        100.0 * (cs[0] - cs[1]) / cs[0].max(1.0)
    );
    println!("(same-direction cars barely move relative to each other, so their");
    println!(" M stays near zero and they keep stable clusterheads; oncoming");
    println!(" traffic streaks by with the CCI rule absorbing the brief contact).");
}
