//! Urban scenario: vehicles on a Manhattan street grid. Motion is
//! constrained to streets, so neighborhoods are elongated and
//! clusterheads sit at well-trafficked blocks.
//!
//! ```text
//! cargo run --release --example manhattan_city
//! ```

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_scenario, MobilityKind, ScenarioConfig};

fn main() {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.field_w_m = 600.0;
    cfg.field_h_m = 600.0;
    cfg.mobility = MobilityKind::Manhattan {
        block_m: 100.0,
        p_turn: 0.5,
    };
    cfg.min_speed_mps = 5.0;
    cfg.max_speed_mps = 15.0; // 18–54 km/h city traffic
    cfg.tx_range_m = 150.0;
    cfg.sim_time_s = 300.0;

    println!("Manhattan grid: 50 vehicles, 6x6 blocks of 100 m, Tx 150 m\n");
    let mut cs = Vec::new();
    let variants: [(&str, AlgorithmKind, Option<f64>); 4] = [
        ("lcc", AlgorithmKind::Lcc, None),
        ("mobic", AlgorithmKind::Mobic, None),
        ("mobic+h", AlgorithmKind::Mobic, Some(0.7)),
        ("wca+h", AlgorithmKind::Wca, Some(0.7)),
    ];
    for (label, alg, history) in variants {
        let mut c = cfg.with_algorithm(alg);
        c.history_alpha = history;
        if history.is_some() {
            c.metric_quantum = 1.0;
        }
        let r = run_scenario(&c, 19).expect("valid config");
        println!(
            "{label:>9}: {:>4} clusterhead changes | {:>4.1} clusters | {:>5.1}% gateways",
            r.clusterhead_changes,
            r.avg_clusters,
            100.0 * r.gateway_fraction,
        );
        cs.push(r.clusterhead_changes as f64);
    }
    println!(
        "\nvs LCC:  mobic {:+.0}%  |  mobic+h {:+.0}%  |  wca+h {:+.0}%",
        100.0 * (cs[0] - cs[1]) / cs[0].max(1.0),
        100.0 * (cs[0] - cs[2]) / cs[0].max(1.0),
        100.0 * (cs[0] - cs[3]) / cs[0].max(1.0),
    );
    println!("(city traffic is near-uniformly mobile, so the raw single-window");
    println!(" metric is noise-dominated — the §5 history extension is what makes");
    println!(" mobility-aware clustering competitive here; see EXPERIMENTS.md X4)");
}
