//! Conference hall (§5 of the paper): 50 attendees drifting between
//! 8 booths at walking pace with long pauses. Most of the crowd is
//! nearly stationary around booths; MOBIC elects the settled
//! attendees as clusterheads.
//!
//! ```text
//! cargo run --release --example conference_hall
//! ```

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_scenario, MobilityKind, ScenarioConfig};

fn main() {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.field_w_m = 120.0;
    cfg.field_h_m = 120.0;
    cfg.mobility = MobilityKind::ConferenceHall { booths: 8 };
    cfg.tx_range_m = 40.0; // short-range indoor radios (Bluetooth-class)
    cfg.sim_time_s = 600.0;

    println!("Conference hall: 50 attendees, 8 booths, 120x120 m, Tx 40 m\n");
    for alg in [AlgorithmKind::Lcc, AlgorithmKind::Mobic] {
        let r = run_scenario(&cfg.with_algorithm(alg), 11).expect("valid config");
        println!(
            "{:>9}: {:>4} clusterhead changes | {:>4.1} clusters | {:>5.1}% gateways",
            alg.name(),
            r.clusterhead_changes,
            r.avg_clusters,
            100.0 * r.gateway_fraction,
        );
    }
    println!("\nBooth crowds form natural clusters; churn comes from attendees");
    println!("walking between booths. MOBIC avoids electing the walkers.");
}
