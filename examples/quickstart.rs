//! Quickstart: run the paper's primary scenario once with MOBIC and
//! once with Lowest-ID (LCC), and compare cluster stability.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_scenario, ScenarioConfig};

fn main() {
    // Table 1, shortened to 300 s so the example finishes in seconds.
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = 300.0;
    cfg.tx_range_m = 250.0;

    println!("MOBIC vs Lowest-ID (LCC): 50 nodes, 670x670 m, MaxSpeed 20 m/s, Tx 250 m\n");
    for alg in [AlgorithmKind::Lcc, AlgorithmKind::Mobic] {
        let result = run_scenario(&cfg.with_algorithm(alg), 42).expect("valid config");
        println!(
            "{:>9}: {:>4} clusterhead changes | {:>4.1} clusters on average | {:>5.1}% gateways",
            alg.name(),
            result.clusterhead_changes,
            result.avg_clusters,
            100.0 * result.gateway_fraction,
        );
    }
    println!("\nLower clusterhead changes = more stable clustering (the paper's CS metric).");
}
